// Shared helpers for the per-figure bench binaries.
//
// Every binary prints: a header naming the paper artifact it regenerates,
// the scale note (MPS_BENCH_SCALE), and then the same rows/series the paper
// reports, via the trace/emit.h renderers.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/download.h"
#include "exp/ideal.h"
#include "exp/scale.h"
#include "exp/scenario_run.h"
#include "exp/streaming.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "exp/webrun.h"
#include "net/wild.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "trace/emit.h"

namespace mps::bench {

// Bandwidth labels like "0.3" for the paper's grid values.
inline std::vector<std::string> grid_labels() {
  std::vector<std::string> out;
  for (double bw : paper_bandwidth_grid()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", bw);
    out.emplace_back(buf);
  }
  return out;
}

inline std::string pair_label(double wifi, double lte) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f-%.1f", wifi, lte);
  return buf;
}

// Labels "1 - 1" .. "1 - 10" for the wget experiments.
inline std::vector<std::string> int_labels(int from, int to) {
  std::vector<std::string> out;
  for (int i = from; i <= to; ++i) out.push_back(std::to_string(i));
  return out;
}

// Flight-recorder end-of-run report under a labelled section header, after
// the figure output so existing figure sections stay byte-identical.
inline void print_recorder_summary(std::ostream& os, const std::string& label,
                                   const FlightRecorder& rec) {
  os << "\n--- flight recorder: " << label << " ---\n";
  rec.summarize(os);
}

// Per-cell state bundle for sweep workers. Everything a cell needs — scale
// parameters, RNG base seed, an optional flight recorder — is captured here
// on the main thread before a sweep fans out, so the cell helpers never
// reach for ambient globals from a worker thread. Defaults replicate the
// historical behavior (current MPS_BENCH_SCALE, seed 1, no recorder).
struct CellConfig {
  BenchScale scale = bench_scale();
  std::uint64_t seed = 1;
  bool collect_traces = false;
  bool idle_reset = true;
  // Borrowed, may be null; when set it must be exclusive to this cell for
  // the duration of the run (FlightRecorder is single-threaded).
  FlightRecorder* recorder = nullptr;
};

// Declarative cell description: every bench cell is a ScenarioSpec, executed
// through exp/scenario_run.h's spec->params conversion, so the bench cells
// and scenarios/*.json presets share one construction path (and stay
// byte-identical with the historical hand-wired parameters).
inline ScenarioSpec streaming_spec(double wifi, double lte, const std::string& sched,
                                   const CellConfig& cell = {}) {
  ScenarioSpec s;
  s.paths = {wifi_path(wifi), lte_path(lte)};
  s.scheduler = sched;
  s.workload.kind = WorkloadKind::kStream;
  s.workload.video_s = cell.scale.video.to_seconds();
  s.workload.runs = cell.scale.streaming_runs;
  s.seed = cell.seed;
  s.record.collect_traces = cell.collect_traces;
  s.conn.idle_cwnd_reset = cell.idle_reset;
  return s;
}

inline ScenarioSpec download_spec(double wifi, double lte, const std::string& sched,
                                  std::uint64_t bytes, std::uint64_t seed, int runs) {
  ScenarioSpec s;
  s.paths = {wifi_path(wifi), lte_path(lte)};
  s.scheduler = sched;
  s.workload.kind = WorkloadKind::kDownload;
  s.workload.bytes = static_cast<std::int64_t>(bytes);
  s.workload.runs = runs;
  s.seed = seed;
  return s;
}

inline ScenarioSpec web_spec(double wifi, double lte, const std::string& sched,
                             std::uint64_t seed, int runs) {
  ScenarioSpec s;
  s.paths = {wifi_path(wifi), lte_path(lte)};
  s.scheduler = sched;
  s.workload.kind = WorkloadKind::kWeb;
  s.workload.runs = runs;
  s.seed = seed;
  return s;
}

// Section 6 in-the-wild cell: profile paths with RTT/loss overrides and
// (for streaming) the profile's rate jitter, built from the profile's
// scalar nominals.
inline ScenarioSpec wild_spec(const WildRunProfile& profile, const std::string& sched,
                              bool jitter) {
  ScenarioSpec s;
  PathSpec wifi = wifi_path(profile.wifi_mbps);
  wifi.rtt_ms = profile.wifi_rtt_ms;
  wifi.loss_rate = profile.wifi_loss_rate;
  PathSpec lte = lte_path(profile.lte_mbps);
  lte.rtt_ms = profile.lte_rtt_ms;
  lte.loss_rate = profile.lte_loss_rate;
  if (jitter) {
    for (PathSpec* p : {&wifi, &lte}) {
      p->variation.kind = VariationKind::kJitter;
      p->variation.jitter_frac = profile.rate_jitter_frac;
      p->variation.jitter_interval_s = profile.jitter_interval_s;
    }
  }
  s.paths = {wifi, lte};
  s.scheduler = sched;
  return s;
}

// Streaming run with the cell's scale settings applied.
inline StreamingResult run_streaming_cell(double wifi, double lte, const std::string& sched,
                                          const CellConfig& cell = {}) {
  ScenarioRunOptions opts;
  opts.recorder = cell.recorder;
  return run_scenario(streaming_spec(wifi, lte, sched, cell), opts).streaming;
}

}  // namespace mps::bench
