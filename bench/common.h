// Shared helpers for the per-figure bench binaries.
//
// Every binary prints: a header naming the paper artifact it regenerates,
// the scale note (MPS_BENCH_SCALE), and then the same rows/series the paper
// reports, via the trace/emit.h renderers.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "exp/download.h"
#include "exp/ideal.h"
#include "exp/scale.h"
#include "exp/streaming.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "exp/webrun.h"
#include "net/wild.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "trace/emit.h"

namespace mps::bench {

// Bandwidth labels like "0.3" for the paper's grid values.
inline std::vector<std::string> grid_labels() {
  std::vector<std::string> out;
  for (double bw : paper_bandwidth_grid()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", bw);
    out.emplace_back(buf);
  }
  return out;
}

inline std::string pair_label(double wifi, double lte) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f-%.1f", wifi, lte);
  return buf;
}

// Labels "1 - 1" .. "1 - 10" for the wget experiments.
inline std::vector<std::string> int_labels(int from, int to) {
  std::vector<std::string> out;
  for (int i = from; i <= to; ++i) out.push_back(std::to_string(i));
  return out;
}

// Flight-recorder end-of-run report under a labelled section header, after
// the figure output so existing figure sections stay byte-identical.
inline void print_recorder_summary(std::ostream& os, const std::string& label,
                                   const FlightRecorder& rec) {
  os << "\n--- flight recorder: " << label << " ---\n";
  rec.summarize(os);
}

// Per-cell state bundle for sweep workers. Everything a cell needs — scale
// parameters, RNG base seed, an optional flight recorder — is captured here
// on the main thread before a sweep fans out, so the cell helpers never
// reach for ambient globals from a worker thread. Defaults replicate the
// historical behavior (current MPS_BENCH_SCALE, seed 1, no recorder).
struct CellConfig {
  BenchScale scale = bench_scale();
  std::uint64_t seed = 1;
  bool collect_traces = false;
  bool idle_reset = true;
  // Borrowed, may be null; when set it must be exclusive to this cell for
  // the duration of the run (FlightRecorder is single-threaded).
  FlightRecorder* recorder = nullptr;
};

// Streaming run with the cell's scale settings applied.
inline StreamingResult run_streaming_cell(double wifi, double lte, const std::string& sched,
                                          const CellConfig& cell = {}) {
  StreamingParams p;
  p.wifi_mbps = wifi;
  p.lte_mbps = lte;
  p.scheduler = sched;
  p.video = cell.scale.video;
  p.seed = cell.seed;
  p.collect_traces = cell.collect_traces;
  p.idle_cwnd_reset = cell.idle_reset;
  p.recorder = cell.recorder;
  return run_streaming_avg(p, cell.scale.streaming_runs);
}

}  // namespace mps::bench
