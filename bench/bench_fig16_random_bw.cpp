// Paper Fig. 16: average streaming throughput under random bandwidth
// changes — both interfaces re-drawn from {0.3, 1.1, 1.7, 4.2, 8.6} Mbps at
// exponentially distributed intervals (mean 40 s), ten seeded scenarios.
// ECF must win on average; DAPS (not shown in the paper's figure for
// clarity) consistently loses.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig16_random_bw",
               "Fig. 16 — streaming throughput, random bandwidth changes", scale_note());

  const std::vector<Rate> levels = {Rate::mbps(0.3), Rate::mbps(1.1), Rate::mbps(1.7),
                                    Rate::mbps(4.2), Rate::mbps(8.6)};
  const int scenarios = bench_scale().random_scenarios;
  const Duration run_len = bench_scale().random_run;
  const std::vector<std::string> scheds = {"default", "blest", "ecf"};

  std::vector<std::string> labels;
  double mean[3] = {};

  // One cell per scenario x scheduler; each cell re-derives the scenario's
  // bandwidth trace from its seed, so traces stay identical across the
  // schedulers of a scenario without sharing state between cells.
  const std::size_t ns = scheds.size();
  const auto flat = sweep_map<double>(
      static_cast<std::size_t>(scenarios) * ns, [&](std::size_t i) {
        const int sc = static_cast<int>(i / ns);
        const std::size_t s = i % ns;
        Rng rng(1000 + static_cast<std::uint64_t>(sc));
        Rng wifi_rng = rng.fork();
        Rng lte_rng = rng.fork();
        const auto wifi_trace =
            make_random_bandwidth_trace(wifi_rng, levels, Duration::seconds(40), run_len);
        const auto lte_trace =
            make_random_bandwidth_trace(lte_rng, levels, Duration::seconds(40), run_len);

        StreamingParams p;
        p.wifi_mbps = wifi_trace.front().rate.to_mbps();
        p.lte_mbps = lte_trace.front().rate.to_mbps();
        p.wifi_trace = wifi_trace;
        p.lte_trace = lte_trace;
        p.scheduler = scheds[s];
        p.video = run_len;
        p.seed = 77 + static_cast<std::uint64_t>(sc);
        return run_streaming(p).mean_throughput_mbps;
      });

  std::vector<std::vector<double>> tput(static_cast<std::size_t>(scenarios),
                                        std::vector<double>(scheds.size()));
  for (int sc = 0; sc < scenarios; ++sc) {
    labels.push_back(std::to_string(sc + 1));
    for (std::size_t s = 0; s < ns; ++s) {
      const double v = flat[static_cast<std::size_t>(sc) * ns + s];
      tput[static_cast<std::size_t>(sc)][s] = v;
      mean[s] += v;
    }
  }

  print_grouped(std::cout, "Average throughput (Mbps) per scenario", "scenario", labels,
                {"Default", "BLEST", "ECF"},
                [&](std::size_t g, std::size_t s) { return tput[g][s]; });

  std::printf("\nscenario means: default %.2f, blest %.2f, ecf %.2f Mbps\n",
              mean[0] / scenarios, mean[1] / scenarios, mean[2] / scenarios);
  std::printf("paper shape: ecf highest average throughput across scenarios\n");
  return 0;
}
