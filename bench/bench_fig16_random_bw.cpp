// Paper Fig. 16: average streaming throughput under random bandwidth
// changes — both interfaces re-drawn from {0.3, 1.1, 1.7, 4.2, 8.6} Mbps at
// exponentially distributed intervals (mean 40 s), ten seeded scenarios.
// ECF must win on average; DAPS (not shown in the paper's figure for
// clarity) consistently loses.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig16_random_bw",
               "Fig. 16 — streaming throughput, random bandwidth changes", scale_note());

  const std::vector<double> levels = {0.3, 1.1, 1.7, 4.2, 8.6};
  const int scenarios = bench_scale().random_scenarios;
  const Duration run_len = bench_scale().random_run;
  const std::vector<std::string> scheds = {"default", "blest", "ecf"};

  std::vector<std::string> labels;
  double mean[3] = {};

  // One cell per scenario x scheduler; each cell re-derives the scenario's
  // bandwidth trace from its trace_seed, so traces stay identical across the
  // schedulers of a scenario without sharing state between cells.
  const std::size_t ns = scheds.size();
  const auto flat = sweep_map<double>(
      static_cast<std::size_t>(scenarios) * ns, [&](std::size_t i) {
        const int sc = static_cast<int>(i / ns);
        const std::size_t s = i % ns;
        ScenarioSpec spec = streaming_spec(8.6, 8.6, scheds[s]);
        for (PathSpec& path : spec.paths) {
          path.variation.kind = VariationKind::kRandom;
          path.variation.levels_mbps = levels;
          path.variation.mean_interval_s = 40.0;
        }
        spec.workload.video_s = run_len.to_seconds();
        spec.seed = 77 + static_cast<std::uint64_t>(sc);
        spec.trace_seed = 1000 + static_cast<std::uint64_t>(sc);
        return run_streaming(spec).mean_throughput_mbps;
      });

  std::vector<std::vector<double>> tput(static_cast<std::size_t>(scenarios),
                                        std::vector<double>(scheds.size()));
  for (int sc = 0; sc < scenarios; ++sc) {
    labels.push_back(std::to_string(sc + 1));
    for (std::size_t s = 0; s < ns; ++s) {
      const double v = flat[static_cast<std::size_t>(sc) * ns + s];
      tput[static_cast<std::size_t>(sc)][s] = v;
      mean[s] += v;
    }
  }

  print_grouped(std::cout, "Average throughput (Mbps) per scenario", "scenario", labels,
                {"Default", "BLEST", "ECF"},
                [&](std::size_t g, std::size_t s) { return tput[g][s]; });

  std::printf("\nscenario means: default %.2f, blest %.2f, ecf %.2f Mbps\n",
              mean[0] / scenarios, mean[1] / scenarios, mean[2] / scenarios);
  std::printf("paper shape: ecf highest average throughput across scenarios\n");
  return 0;
}
