// Paper Table 3: number of LTE CWND resets to the initial window (idle
// restarts + loss timeouts) per scheduler over a full playback at 0.3 Mbps
// WiFi / 8.6 Mbps LTE. ECF must show by far the fewest.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_tab03_iw_resets",
               "Table 3 — # of IW resets, 0.3 Mbps WiFi / 8.6 Mbps LTE", scale_note());

  // Paper values, for a 1332 s playback: default 486, DAPS 92, BLEST 382,
  // ECF 16. We print measured counts plus a per-paper-duration scaling.
  static constexpr double kPaper[4] = {486, 92, 382, 16};
  const double scale_to_paper = 1332.0 / bench_scale().video.to_seconds();

  const auto& scheds = paper_schedulers();
  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(scheds.size(), [&](std::size_t i) {
    return run_streaming_cell(0.3, 8.6, scheds[i], cell);
  });

  std::printf("%10s %16s %22s %14s\n", "scheduler", "measured", "scaled to 1332s", "paper");
  std::vector<double> measured;
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    const double m = static_cast<double>(results[i].iw_resets_lte);
    measured.push_back(m);
    // paper_schedulers() order: default, ecf, daps, blest -> map to paper's
    // column order per name.
    const double paper = scheds[i] == "default" ? kPaper[0]
                         : scheds[i] == "daps"  ? kPaper[1]
                         : scheds[i] == "blest" ? kPaper[2]
                                                : kPaper[3];
    std::printf("%10s %16.0f %22.0f %14.0f\n", scheds[i].c_str(), m, m * scale_to_paper, paper);
  }
  std::printf("\npaper shape: ecf fewest resets; default most\n");
  return 0;
}
