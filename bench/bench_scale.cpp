// Scale benchmark: the world core at 1k / 10k / 100k concurrent MPTCP flows.
//
// Each cell runs the competing-traffic engine on a two-path testbed whose
// link capacity scales with the flow population (so per-flow activity stays
// constant and event load grows with flows), with Poisson connection churn
// exercising the arena slabs and exponential flow sizes mixing short
// completers with long-lived residents. Reported per cell, into
// BENCH_scale.json (scripts/bench_scale.sh drives the two-build flow):
//
//  * events, wall_s, events_per_sec — simulator kernel throughput, measured
//    in the plain Release build.
//  * mem_high_water_bytes, bytes_per_flow — resident memory per concurrent
//    flow, measured in a -DMPS_PROF=ON build via --mem-only, which re-runs
//    the cells for memory only and merges the numbers into an existing
//    report (keeping the fast build's events/sec).
//
// Modes:
//   bench_scale [--out FILE] [--cells N,N,...]   # timing cells (default)
//   bench_scale --mem-only IN.json [--out FILE]  # merge memory numbers
//   bench_scale --smoke                          # 1k-flow cell under the
//                                                # InvariantChecker; exits
//                                                # nonzero on any violation
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "scenario/json.h"
#include "scenario/world.h"
#include "sim/simulator.h"
#include "traffic/engine.h"

namespace mps {
namespace {

ScenarioSpec scale_cell_spec(std::int64_t flows, double duration_s) {
  ScenarioSpec spec;
  spec.name = "scale_" + std::to_string(flows);
  // ~24 kbps of capacity per flow on each path: per-flow packet activity is
  // constant across cells, so kernel event load scales with the population.
  const double mbps = static_cast<double>(flows) * 0.024;
  spec.paths = {wifi_path(mbps), lte_path(mbps)};
  spec.scheduler = "default";
  spec.traffic.enabled = true;
  spec.traffic.flows = flows;
  // 5%/s connection churn keeps the arena recycling under load.
  spec.traffic.arrival_rate_per_s = static_cast<double>(flows) * 0.05;
  spec.traffic.max_arrivals = std::max<std::int64_t>(flows / 10, 16);
  // Mean flow size well above what a flow's capacity share drains within the
  // cell window: the run stays capacity-bound end to end, while the
  // exponential tail still completes (and churns) plenty of small flows.
  spec.traffic.flow_bytes = 256 * 1024;
  spec.traffic.size_dist = "exponential";
  spec.traffic.duration_s = duration_s;
  spec.seed = 7;
  return spec;
}

// Sim-seconds per cell, chosen so the 100k cell stays a single-process run
// of reasonable wall time while smaller cells accumulate enough events for
// a stable rate.
double cell_duration_s(std::int64_t flows) {
  if (flows >= 100'000) return 1.5;
  if (flows >= 10'000) return 6.0;
  return 20.0;
}

struct CellResult {
  std::int64_t flows = 0;
  double duration_s = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  std::size_t started = 0;
  std::size_t completed = 0;
  double goodput_mbps = 0.0;
  std::uint64_t mem_high_water = 0;  // MPS_PROF builds only
};

CellResult run_cell(std::int64_t flows) {
  CellResult r;
  r.flows = flows;
  r.duration_s = cell_duration_s(flows);
  const ScenarioSpec spec = scale_cell_spec(flows, r.duration_s);

  prof::reset();  // memory high-water restarts from the current live level
  const auto t0 = std::chrono::steady_clock::now();
  RunTelemetry telemetry;
  {
    WorldBuilder builder(spec);
    auto world = builder.build();
    TrafficEngine engine(*world, spec);
    engine.telemetry = &telemetry;
    const TrafficResult res = engine.run();
    r.started = res.started;
    r.completed = res.completed;
    r.goodput_mbps = res.aggregate_goodput_mbps;
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events = telemetry.events;
  r.mem_high_water = prof::snapshot().memory_total.high_water_bytes;
  return r;
}

Json cell_to_json(const CellResult& r) {
  Json j = Json::object();
  j.set("flows", Json::number(r.flows));
  j.set("duration_s", Json::number(r.duration_s));
  j.set("events", Json::number(static_cast<std::int64_t>(r.events)));
  j.set("wall_s", Json::number(r.wall_s));
  j.set("events_per_sec",
        Json::number(r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0));
  j.set("started", Json::number(static_cast<std::int64_t>(r.started)));
  j.set("completed", Json::number(static_cast<std::int64_t>(r.completed)));
  j.set("goodput_mbps", Json::number(r.goodput_mbps));
  if (prof::compiled()) {
    j.set("mem_high_water_bytes", Json::number(static_cast<std::int64_t>(r.mem_high_water)));
    j.set("bytes_per_flow",
          Json::number(static_cast<double>(r.mem_high_water) / static_cast<double>(r.flows)));
  }
  return j;
}

int write_doc(const Json& doc, const std::string& path) {
  std::ofstream out(path);
  out << doc.dump(2) << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("bench_scale: wrote %s\n", path.c_str());
  return 0;
}

int run_timing(const std::vector<std::int64_t>& cells, const std::string& out_path) {
  Json doc = Json::object();
  doc.set("bench", Json::string("bench_scale"));
  Json arr = Json::array();
  for (const std::int64_t flows : cells) {
    std::printf("bench_scale: %lld flows...\n", static_cast<long long>(flows));
    std::fflush(stdout);
    const CellResult r = run_cell(flows);
    std::printf("  events=%llu wall=%.2fs events/sec=%.3g started=%zu completed=%zu\n",
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0, r.started,
                r.completed);
    arr.push_back(cell_to_json(r));
  }
  doc.set("cells", std::move(arr));
  return write_doc(doc, out_path);
}

// Re-runs the cells listed in `in_path` for their memory numbers only and
// merges them into that report, preserving the timing fields.
int run_mem_merge(const std::string& in_path, const std::string& out_path) {
  if (!prof::compiled()) {
    std::fprintf(stderr,
                 "bench_scale: --mem-only requires a -DMPS_PROF=ON build "
                 "(memory accounting is compiled out)\n");
    return 1;
  }
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "bench_scale: cannot read %s\n", in_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  Json doc = Json::parse(buf.str());
  for (Json& cell : (*doc.find("cells")).items()) {
    const std::int64_t flows = cell.find("flows")->as_int();
    std::printf("bench_scale: %lld flows (memory)...\n", static_cast<long long>(flows));
    std::fflush(stdout);
    const CellResult r = run_cell(flows);
    cell.set("mem_high_water_bytes",
             Json::number(static_cast<std::int64_t>(r.mem_high_water)));
    cell.set("bytes_per_flow", Json::number(static_cast<double>(r.mem_high_water) /
                                            static_cast<double>(flows)));
    std::printf("  high_water=%llu bytes/flow=%.0f\n",
                static_cast<unsigned long long>(r.mem_high_water),
                static_cast<double>(r.mem_high_water) / static_cast<double>(flows));
    const prof::Snapshot snap = prof::snapshot();
    for (std::size_t s = 0; s < prof::kMemSubsysCount; ++s) {
      const prof::MemStats& m = snap.memory[s];
      if (m.high_water_bytes == 0) continue;
      std::printf("    %-8s high_water=%llu live=%llu allocs=%llu\n",
                  prof::mem_subsys_name(static_cast<prof::MemSubsys>(s)),
                  static_cast<unsigned long long>(m.high_water_bytes),
                  static_cast<unsigned long long>(m.live_bytes),
                  static_cast<unsigned long long>(m.allocs));
    }
  }
  return write_doc(doc, out_path);
}

// 1k-flow cell with the flight recorder on and every live connection under
// the InvariantChecker — the scale configuration must not just run fast, it
// must still satisfy the protocol invariants.
int run_smoke() {
  const std::int64_t flows = 1000;
  ScenarioSpec spec = scale_cell_spec(flows, 1.0);
  FlightRecorder recorder;
  WorldBuilder builder(spec);
  auto world = builder.build(&recorder);
  InvariantChecker checker(world->sim());
  TrafficEngine engine(*world, spec);
  engine.on_flow_start = [&checker](Connection& c) { checker.watch(c); };
  engine.on_flow_end = [&checker](Connection& c) { checker.unwatch(c); };
  const TrafficResult res = engine.run();
  std::printf("bench_scale --smoke: started=%zu completed=%zu checks=%llu\n", res.started,
              res.completed, static_cast<unsigned long long>(checker.checks_run()));
  if (res.started < static_cast<std::size_t>(flows)) {
    std::fprintf(stderr, "bench_scale --smoke: only %zu/%lld flows started\n", res.started,
                 static_cast<long long>(flows));
    return 2;
  }
  if (!checker.ok()) {
    std::fprintf(stderr, "%s", checker.report().c_str());
    return 2;
  }
  std::printf("bench_scale --smoke: OK\n");
  return 0;
}

}  // namespace
}  // namespace mps

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scale.json";
  std::string mem_in;
  bool smoke = false;
  std::vector<std::int64_t> cells = {1'000, 10'000, 100'000};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--mem-only" && i + 1 < argc) {
      mem_in = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--cells" && i + 1 < argc) {
      cells.clear();
      std::stringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) cells.push_back(std::stoll(tok));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--cells N,N,...] [--mem-only IN.json] [--smoke]\n",
                   argv[0]);
      return 1;
    }
  }
  if (smoke) return mps::run_smoke();
  if (!mem_in.empty()) return mps::run_mem_merge(mem_in, out_path);
  return mps::run_timing(cells, out_path);
}
