// Ablation (design choices in DESIGN.md): ECF's hysteresis beta — the paper
// uses 0.25 throughout and reports other values "yield similar results" —
// and the slow-start-aware completion estimate this implementation adds.
#include <memory>

#include "bench/common.h"
#include "core/ecf.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_ablation_ecf",
               "ablation — ECF beta sweep (paper Section 5.1: beta = 0.25)", scale_note());

  const std::pair<double, double> configs[2] = {{0.3, 8.6}, {1.1, 8.6}};

  for (const auto& [wifi, lte] : configs) {
    std::printf("\n%.1f Mbps WiFi / %.1f Mbps LTE\n", wifi, lte);
    std::printf("%10s %14s %14s %14s\n", "beta", "bitrate ratio", "gap p50 (s)",
                "lte IW resets");
    for (double beta : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      const ScenarioSpec spec = streaming_spec(wifi, lte, "default");
      ScenarioRunOptions opts;
      opts.scheduler_override = [beta] {
        EcfConfig config;
        config.beta = beta;
        return std::make_unique<EcfScheduler>(config);
      };
      const auto r = run_streaming(spec, opts);
      std::printf("%10.2f %14.3f %14.3f %14llu\n", beta,
                  r.mean_bitrate_mbps / ideal_bitrate_mbps(wifi, lte),
                  r.last_packet_gap.quantile(0.5),
                  static_cast<unsigned long long>(r.iw_resets_lte));
    }
  }
  std::printf("\nexpected: results similar across beta (paper found the same); beta only\n"
              "prevents rapid wait/send oscillation at decision boundaries\n");
  return 0;
}
