// Scheduler x congestion-controller cross product (ROADMAP item 3): every
// scheduler the repo ships (paper four + rr + the cross-layer QAware and
// the OCO gradient-weight scheduler) against every coupled controller
// (reno, cubic, lia, olia, balia) across three heterogeneity ratios, as
// download-completion heatmaps — the paper evaluates schedulers under one
// controller at a time; this grid asks whether ECF's win survives the
// controller choice.
//
// Two measurements, deterministic at any MPS_BENCH_JOBS value:
//
//  * completion: mean wget completion time per (cc, wifi:lte ratio,
//    scheduler) cell, WiFi swept {10, 5, 2} Mbps against LTE fixed at 10,
//    one grouped table per controller, plus a "does ECF still win?" readout
//    comparing ECF against the default scheduler in every cell. Light iid
//    loss (0.5% wifi / 0.2% lte) keeps the transfer out of pure slow start
//    — loss-free downloads at this size never enter congestion avoidance,
//    where the controllers actually differ.
//  * fairness: Jain's index over 8 competing MPTCP flows (plus an LTE
//    single-path cross flow) per (cc, scheduler) cell — coupled controllers
//    exist to be fair at shared bottlenecks, so the cross product must
//    include the regime they were designed for.
//
// Results are written to BENCH_crossproduct.json (path overridable as
// argv[1]) so successive PRs can compare cells.
#include <fstream>

#include "bench/common.h"
#include "scenario/json.h"
#include "tcp/cc_registry.h"

int main(int argc, char** argv) {
  using namespace mps;
  using namespace mps::bench;

  const char* out_path = "BENCH_crossproduct.json";
  if (argc > 1) out_path = argv[1];

  print_header(std::cout, "bench_crossproduct",
               "Scheduler x CC cross product — completion + fairness grid", scale_note());

  const std::vector<std::string> scheds = {"default", "ecf", "blest", "daps",
                                           "rr",      "qaware", "oco"};
  const std::vector<std::string>& ccs = cc_names();
  const std::vector<double> wifi_grid = {10.0, 5.0, 2.0};  // LTE fixed at 10
  const double lte = 10.0;
  const BenchScale& scale = bench_scale();
  const std::uint64_t bytes = scale.name == "quick" ? 262144 : 1048576;
  const int runs = scale.wget_runs;

  const std::size_t ns = scheds.size();
  const std::size_t nr = wifi_grid.size();
  const std::size_t nc = ccs.size();

  // One flat sweep over cc x ratio x scheduler (cc-major); each cell is an
  // independent seeded world, so the grid is bit-identical at any job count.
  const auto completion = sweep_map<double>(nc * nr * ns, [&](std::size_t i) {
    ScenarioSpec spec = download_spec(wifi_grid[(i / ns) % nr], lte, scheds[i % ns], bytes,
                                      1 + static_cast<std::uint64_t>((i / ns) % nr), runs);
    spec.conn.cc = ccs[i / (nr * ns)];
    spec.paths[0].loss_rate = 0.005;
    spec.paths[1].loss_rate = 0.002;
    return run_scenario(spec).download_completions.mean();
  });
  const auto cell = [&](std::size_t c, std::size_t r, std::size_t s) {
    return completion[c * nr * ns + r * ns + s];
  };

  std::vector<std::string> ratio_rows;
  for (double w : wifi_grid) ratio_rows.push_back(pair_label(w, lte));
  for (std::size_t c = 0; c < nc; ++c) {
    print_grouped(std::cout, "(cc=" + ccs[c] + ") avg completion time (s), LTE 10 Mbps",
                  "wifi-lte", ratio_rows, scheds,
                  [&](std::size_t g, std::size_t s) { return cell(c, g, s); });
  }

  // Jain's fairness: 8 competing MPTCP flows + one LTE cross flow, per
  // (cc, scheduler) cell.
  const double duration_s = scale.name == "quick" ? 8.0 : 20.0;
  const std::int64_t flow_bytes = scale.name == "quick" ? 131072 : 262144;
  const auto fairness = sweep_map<double>(nc * ns, [&](std::size_t i) {
    ScenarioSpec spec = fairness_cell_spec(scheds[i % ns], 8, duration_s, flow_bytes);
    spec.conn.cc = ccs[i / ns];
    return run_traffic(spec).jain;
  });
  print_grouped(std::cout, "Jain fairness index, 8 competing flows + LTE cross flow", "cc",
                ccs, scheds, [&](std::size_t c, std::size_t s) { return fairness[c * ns + s]; });

  // The readout the grid exists for: does ECF's paper-scale win survive the
  // controller choice? Per controller, count the ratio cells where ECF beats
  // (or ties, within 1 ms) the default min-RTT scheduler, and where it is
  // the outright best of the whole scheduler row.
  std::printf("\ndoes ECF still win?\n");
  std::size_t le_total = 0;
  for (std::size_t c = 0; c < nc; ++c) {
    std::size_t le_default = 0, best = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      const double ecf_s = cell(c, r, 1);
      if (ecf_s <= cell(c, r, 0) + 1e-3) ++le_default;
      bool outright = true;
      for (std::size_t s = 0; s < ns; ++s) {
        if (s != 1 && cell(c, r, s) < ecf_s) outright = false;
      }
      if (outright) ++best;
    }
    le_total += le_default;
    std::printf("  %-6s ecf <= default in %zu/%zu ratio cells, outright best in %zu/%zu\n",
                ccs[c].c_str(), le_default, nr, best, nr);
  }
  std::printf("  total: ecf <= default in %zu/%zu cells across the cross product\n", le_total,
              nc * nr);

  Json doc = Json::object();
  doc.set("bench", Json::string("bench_crossproduct"));
  doc.set("scale", Json::string(scale.name));
  doc.set("bytes", Json::number(static_cast<std::int64_t>(bytes)));
  doc.set("runs", Json::number(static_cast<std::int64_t>(runs)));
  Json cells = Json::array();
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t r = 0; r < nr; ++r) {
      for (std::size_t s = 0; s < ns; ++s) {
        Json e = Json::object();
        e.set("cc", Json::string(ccs[c]));
        e.set("wifi_mbps", Json::number(wifi_grid[r]));
        e.set("lte_mbps", Json::number(lte));
        e.set("scheduler", Json::string(scheds[s]));
        e.set("mean_s", Json::number(cell(c, r, s)));
        cells.push_back(std::move(e));
      }
    }
  }
  doc.set("completion", cells);
  Json fair = Json::array();
  for (std::size_t c = 0; c < nc; ++c) {
    for (std::size_t s = 0; s < ns; ++s) {
      Json e = Json::object();
      e.set("cc", Json::string(ccs[c]));
      e.set("scheduler", Json::string(scheds[s]));
      e.set("jain", Json::number(fairness[c * ns + s]));
      fair.push_back(std::move(e));
    }
  }
  doc.set("fairness", fair);
  doc.set("ecf_le_default_cells", Json::number(static_cast<std::int64_t>(le_total)));
  doc.set("grid_cells", Json::number(static_cast<std::int64_t>(nc * nr)));

  std::ofstream f(out_path);
  f << doc.dump(2) << "\n";
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
