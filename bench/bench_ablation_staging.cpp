// Ablation (design choices in DESIGN.md): the per-subflow send-queue
// (staging) limit — the 0.89-style committed backlog that makes default
// scheduling costly on slow paths. Deeper queues hurt the default scheduler
// sharply and ECF only mildly.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_ablation_staging",
               "ablation — subflow send-queue limit (0.89 commitment model)", scale_note());

  std::printf("\n0.3 Mbps WiFi / 8.6 Mbps LTE, bitrate ratio vs ideal\n");
  std::printf("%14s %12s %12s %14s\n", "staging (KB)", "default", "ecf", "ecf gain");
  for (std::uint64_t kb : {16, 32, 64, 128, 256}) {
    ScenarioSpec spec = streaming_spec(0.3, 8.6, "default");
    spec.conn.staging_bytes = static_cast<std::int64_t>(kb * 1024);
    const double def = run_streaming(spec).mean_bitrate_mbps / ideal_bitrate_mbps(0.3, 8.6);
    spec.scheduler = "ecf";
    const double ecf = run_streaming(spec).mean_bitrate_mbps / ideal_bitrate_mbps(0.3, 8.6);
    std::printf("%14llu %12.3f %12.3f %13.0f%%\n", static_cast<unsigned long long>(kb), def,
                ecf, def > 0 ? (ecf / def - 1.0) * 100.0 : 0.0);
  }
  std::printf("\nexpected: default degrades as the committed backlog grows; ecf stays\n"
              "roughly flat because it declines slow-path commitments\n");
  return 0;
}
