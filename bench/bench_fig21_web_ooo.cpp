// Paper Fig. 21: CCDF of out-of-order delay during web browsing for the
// same three bandwidth configurations as Fig. 20. ECF must reduce
// out-of-order delay under path heterogeneity.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig21_web_ooo",
               "Fig. 21 — web browsing out-of-order delay CCDF", scale_note());

  const std::pair<double, double> configs[3] = {{5.0, 5.0}, {1.0, 5.0}, {1.0, 10.0}};
  const char* names[3] = {"(a) 5.0/5.0 Mbps", "(b) 1.0/5.0 Mbps", "(c) 1.0/10.0 Mbps"};
  const auto& scheds = paper_schedulers();

  // One flat sweep over config x scheduler (config-major).
  const std::size_t ns = scheds.size();
  const int web_runs = bench_scale().web_runs;
  const auto all = sweep_map<WebRunResult>(3 * ns, [&](std::size_t i) {
    const int c = static_cast<int>(i / ns);
    return run_web(web_spec(configs[c].first, configs[c].second, scheds[i % ns],
                            400 + static_cast<std::uint64_t>(c), web_runs));
  });

  for (int c = 0; c < 3; ++c) {
    std::vector<WebRunResult> results(
        all.begin() + static_cast<std::ptrdiff_t>(c * static_cast<int>(ns)),
        all.begin() + static_cast<std::ptrdiff_t>((c + 1) * static_cast<int>(ns)));
    std::vector<std::pair<std::string, const Samples*>> series;
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      series.emplace_back(scheds[i], &results[i].ooo_delay);
    }
    print_distribution(std::cout, names[c], "delay(s)", series, /*ccdf=*/true,
                       make_x_grid(series, 12));
    std::printf("p99 delay: ");
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      std::printf("%s=%.3fs ", scheds[i].c_str(), results[i].ooo_delay.quantile(0.99));
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: ecf reduces out-of-order delay when paths are heterogeneous\n");
  return 0;
}
