// Paper Fig. 2: ratio of measured vs. ideal average bit rate for the default
// MPTCP scheduler across the 6x6 regulated-bandwidth grid (darker/higher is
// better). The heterogeneous corners must show clear degradation.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig02_motivation_heatmap",
               "Fig. 2 — measured/ideal bit rate, default scheduler, 6x6 grid",
               scale_note());

  const auto& grid = paper_bandwidth_grid();
  const std::size_t n = grid.size();
  const CellConfig cell;  // resolved on the main thread, shared read-only
  const auto results = sweep_map<StreamingResult>(n * n, [&](std::size_t i) {
    return run_streaming_cell(grid[i / n], grid[i % n], "default", cell);
  });
  std::vector<std::vector<double>> ratio(n, std::vector<double>(n));
  for (std::size_t w = 0; w < n; ++w) {
    for (std::size_t l = 0; l < n; ++l) {
      ratio[l][w] = results[w * n + l].mean_bitrate_mbps / ideal_bitrate_mbps(grid[w], grid[l]);
    }
  }

  print_heatmap(std::cout, "Ratio of measured vs ideal bit rate (default)", "LTE (Mbps)",
                "WiFi (Mbps)", grid_labels(), grid_labels(),
                [&](std::size_t row, std::size_t col) { return ratio[row][col]; });

  // The paper's qualitative check: heterogeneous corners < diagonal.
  const double corner = std::min(ratio[5][0], ratio[0][5]);
  const double diag = ratio[5][5];
  std::printf("\nheterogeneous corner ratio %.2f vs symmetric top ratio %.2f -> %s\n", corner,
              diag, corner < diag ? "degradation reproduced" : "NO degradation (unexpected)");
  return 0;
}
