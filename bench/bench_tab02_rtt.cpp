// Paper Table 2: average measured RTT per interface under each regulated
// bandwidth. Queueing at the regulated bottleneck dominates: RTT grows as
// bandwidth shrinks, and WiFi < LTE at equal bandwidth.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_tab02_rtt",
               "Table 2 — average RTT (ms) vs regulated bandwidth", scale_note());

  const auto& grid = paper_bandwidth_grid();
  static constexpr double kPaperWifiMs[6] = {969, 413, 273, 196, 87, 40};
  static constexpr double kPaperLteMs[6] = {858, 416, 268, 210, 131, 105};

  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(grid.size(), [&](std::size_t i) {
    return run_streaming_cell(grid[i], grid[i], "default", cell);
  });

  std::printf("%10s %14s %14s %14s %14s\n", "Mbps", "wifi (ms)", "paper wifi", "lte (ms)",
              "paper lte");
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& r = results[i];
    std::printf("%10.1f %14.0f %14.0f %14.0f %14.0f\n", grid[i], r.mean_rtt_wifi_ms,
                kPaperWifiMs[i], r.mean_rtt_lte_ms, kPaperLteMs[i]);
  }
  std::printf("\nshape checks: RTT decreasing in bandwidth; wifi < lte at equal rate\n");
  return 0;
}
