// Paper Fig. 6: streaming throughput with and without the idle CWND reset
// (default scheduler) against the ideal aggregate bandwidth, for all 36
// WiFi-LTE pairs. Disabling the reset must recover throughput on average,
// while both stay below the ideal.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig06_cwnd_reset",
               "Fig. 6 — throughput with/without CWND reset vs ideal (default)", scale_note());

  const auto& grid = paper_bandwidth_grid();
  const std::size_t n = grid.size();
  CellConfig reset_cell;
  CellConfig noreset_cell;
  noreset_cell.idle_reset = false;
  // Cell index: pair-major, with/without reset interleaved per pair.
  const auto results = sweep_map<double>(2 * n * n, [&](std::size_t i) {
    const std::size_t pair = i / 2;
    const double w = grid[pair / n];
    const double l = grid[pair % n];
    const CellConfig& cell = (i % 2 == 0) ? reset_cell : noreset_cell;
    return run_streaming_cell(w, l, "default", cell).mean_throughput_mbps;
  });
  std::vector<std::string> pairs;
  std::vector<double> with_reset, without_reset, ideal;
  for (double w : grid) {
    for (double l : grid) {
      const std::size_t pair = pairs.size();
      pairs.push_back(pair_label(w, l));
      with_reset.push_back(results[2 * pair]);
      without_reset.push_back(results[2 * pair + 1]);
      ideal.push_back(w + l);
    }
  }

  print_grouped(std::cout, "Throughput (Mbps)", "WiFi-LTE", pairs,
                {"w/ reset", "w/o reset", "ideal"},
                [&](std::size_t g, std::size_t s) {
                  return s == 0 ? with_reset[g] : s == 1 ? without_reset[g] : ideal[g];
                });

  double sum_with = 0, sum_without = 0, sum_ideal = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    sum_with += with_reset[i];
    sum_without += without_reset[i];
    sum_ideal += ideal[i];
  }
  std::printf("\ngrid means: w/ reset %.2f, w/o reset %.2f, ideal %.2f Mbps\n",
              sum_with / pairs.size(), sum_without / pairs.size(), sum_ideal / pairs.size());
  std::printf("paper shape: w/o reset >= w/ reset, both < ideal -> %s\n",
              (sum_without >= sum_with * 0.98 && sum_without < sum_ideal) ? "reproduced"
                                                                          : "NOT reproduced");
  return 0;
}
