// Paper Fig. 9: ratio of measured vs ideal average bit rate for all four
// schedulers (default, ECF, DAPS, BLEST) on the 6x6 bandwidth grid. ECF
// must come closest to ideal under heterogeneity; DAPS must not improve on
// the default.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig09_scheduler_heatmaps",
               "Fig. 9 — measured/ideal bit rate heat maps per scheduler", scale_note());

  const auto& grid = paper_bandwidth_grid();
  std::vector<std::string> labels = grid_labels();

  double mean_ratio[4] = {};
  double hetero_ratio[4] = {};
  int hetero_cells = 0;
  const auto& scheds = paper_schedulers();  // default, ecf, daps, blest

  // One flat sweep over scheduler x WiFi x LTE (scheduler-major).
  const std::size_t n = grid.size();
  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(scheds.size() * n * n, [&](std::size_t i) {
    const std::size_t s = i / (n * n);
    const std::size_t w = (i % (n * n)) / n;
    const std::size_t l = i % n;
    return run_streaming_cell(grid[w], grid[l], scheds[s], cell);
  });

  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::vector<std::vector<double>> ratio(grid.size(), std::vector<double>(grid.size()));
    int hcells = 0;
    for (std::size_t w = 0; w < grid.size(); ++w) {
      for (std::size_t l = 0; l < grid.size(); ++l) {
        const auto& r = results[s * n * n + w * n + l];
        const double v = r.mean_bitrate_mbps / ideal_bitrate_mbps(grid[w], grid[l]);
        ratio[l][w] = v;
        mean_ratio[s] += v;
        const double het = std::max(grid[w], grid[l]) / std::min(grid[w], grid[l]);
        if (het >= 4.0) {
          hetero_ratio[s] += v;
          ++hcells;
        }
      }
    }
    hetero_cells = hcells;
    print_heatmap(std::cout, "(" + std::string(1, static_cast<char>('a' + s)) + ") " + scheds[s],
                  "LTE (Mbps)", "WiFi (Mbps)", labels, labels,
                  [&](std::size_t row, std::size_t col) { return ratio[row][col]; });
  }

  std::printf("\nmean ratio over grid / over heterogeneous cells (het >= 4x):\n");
  for (std::size_t s = 0; s < scheds.size(); ++s) {
    std::printf("  %-8s %.3f / %.3f\n", scheds[s].c_str(), mean_ratio[s] / 36.0,
                hetero_ratio[s] / hetero_cells);
  }
  std::printf("paper shape: ecf closest to ideal under heterogeneity; daps <= default\n");
  return 0;
}
