// Paper Fig. 10: fraction of traffic scheduled onto the fast subflow for
// BLEST and ECF against the ideal share, streaming with fixed bandwidth.
// ECF must track the ideal allocation more closely than BLEST.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig10_traffic_split",
               "Fig. 10 — fraction of traffic on fast subflow (BLEST, ECF, ideal)",
               scale_note());

  const auto& grid = paper_bandwidth_grid();
  std::vector<std::string> pairs;
  std::vector<double> blest, ecf, ideal;
  double err_blest = 0, err_ecf = 0;
  for (double w : grid) {
    for (double l : grid) {
      pairs.push_back(pair_label(w, l));
      blest.push_back(run_streaming_cell(w, l, "blest").fraction_fast);
      ecf.push_back(run_streaming_cell(w, l, "ecf").fraction_fast);
      ideal.push_back(ideal_fast_fraction(std::max(w, l), std::min(w, l)));
      err_blest += std::abs(blest.back() - ideal.back());
      err_ecf += std::abs(ecf.back() - ideal.back());
    }
  }

  print_grouped(std::cout, "Fraction over fast subflow", "WiFi-LTE", pairs,
                {"BLEST", "ECF", "ideal"}, [&](std::size_t g, std::size_t s) {
                  return s == 0 ? blest[g] : s == 1 ? ecf[g] : ideal[g];
                });

  std::printf("\nmean |measured - ideal|: blest %.3f, ecf %.3f (paper: ecf closer)\n",
              err_blest / pairs.size(), err_ecf / pairs.size());
  return 0;
}
