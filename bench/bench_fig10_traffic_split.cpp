// Paper Fig. 10: fraction of traffic scheduled onto the fast subflow for
// BLEST and ECF against the ideal share, streaming with fixed bandwidth.
// ECF must track the ideal allocation more closely than BLEST.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig10_traffic_split",
               "Fig. 10 — fraction of traffic on fast subflow (BLEST, ECF, ideal)",
               scale_note());

  const auto& grid = paper_bandwidth_grid();
  const std::size_t n = grid.size();
  const CellConfig cell;
  // Cell index: pair-major, BLEST/ECF interleaved per pair.
  const auto results = sweep_map<double>(2 * n * n, [&](std::size_t i) {
    const std::size_t pair = i / 2;
    const char* sched = (i % 2 == 0) ? "blest" : "ecf";
    return run_streaming_cell(grid[pair / n], grid[pair % n], sched, cell).fraction_fast;
  });
  std::vector<std::string> pairs;
  std::vector<double> blest, ecf, ideal;
  double err_blest = 0, err_ecf = 0;
  for (double w : grid) {
    for (double l : grid) {
      const std::size_t pair = pairs.size();
      pairs.push_back(pair_label(w, l));
      blest.push_back(results[2 * pair]);
      ecf.push_back(results[2 * pair + 1]);
      ideal.push_back(ideal_fast_fraction(std::max(w, l), std::min(w, l)));
      err_blest += std::abs(blest.back() - ideal.back());
      err_ecf += std::abs(ecf.back() - ideal.back());
    }
  }

  print_grouped(std::cout, "Fraction over fast subflow", "WiFi-LTE", pairs,
                {"BLEST", "ECF", "ideal"}, [&](std::size_t g, std::size_t s) {
                  return s == 0 ? blest[g] : s == 1 ? ecf[g] : ideal[g];
                });

  std::printf("\nmean |measured - ideal|: blest %.3f, ecf %.3f (paper: ecf closer)\n",
              err_blest / pairs.size(), err_ecf / pairs.size());
  return 0;
}
