// Paper Fig. 19: ECF completion time normalized by the default scheduler
// over the 10x10 WiFi x LTE grid for four file sizes. Values are clamped to
// 1.0 when the difference is within one standard deviation (as the paper
// does); < 1 means ECF faster. ECF must never be meaningfully worse.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig19_wget_ratio",
               "Fig. 19 — ECF/default wget completion ratio, 10x10 grid", scale_note());

  const std::vector<std::uint64_t> sizes_kb = {128, 256, 512, 1024};
  const int runs = bench_scale().wget_runs;
  const int step = bench_scale().grid_step;

  std::vector<int> points;
  for (int v = 1; v <= 10; v += step) points.push_back(v);
  std::vector<std::string> labels;
  for (int v : points) labels.push_back(std::to_string(v));

  // One cell per (size, WiFi, LTE): both schedulers run inside the cell so
  // they share the seeds exactly as before.
  const std::size_t np = points.size();
  const auto flat = sweep_map<double>(sizes_kb.size() * np * np, [&](std::size_t i) {
    const std::uint64_t kb = sizes_kb[i / (np * np)];
    const std::size_t wi = (i / np) % np;
    const std::size_t li = i % np;
    ScenarioSpec spec =
        download_spec(points[wi], points[li], "default", kb * 1024,
                      100 * static_cast<std::uint64_t>(wi) + static_cast<std::uint64_t>(li),
                      runs);
    const Samples def = run_scenario(spec).download_completions;
    spec.scheduler = "ecf";
    const Samples ecf = run_scenario(spec).download_completions;
    // Paper: set to 1 when within one standard deviation of each other.
    const double band = std::max(def.stddev(), ecf.stddev());
    double r = 1.0;
    if (std::abs(ecf.mean() - def.mean()) > band && def.mean() > 0) {
      r = ecf.mean() / def.mean();
    }
    return r;
  });

  int worse_cells = 0, better_cells = 0;
  for (std::size_t k = 0; k < sizes_kb.size(); ++k) {
    const std::uint64_t kb = sizes_kb[k];
    std::vector<std::vector<double>> ratio(points.size(), std::vector<double>(points.size()));
    for (std::size_t wi = 0; wi < points.size(); ++wi) {
      for (std::size_t li = 0; li < points.size(); ++li) {
        const double r = flat[k * np * np + wi * np + li];
        ratio[li][wi] = r;
        if (r > 1.05) ++worse_cells;
        if (r < 0.95) ++better_cells;
      }
    }
    print_heatmap(std::cout, "(" + std::to_string(kb) + " KB) ECF/default completion ratio",
                  "LTE (Mbps)", "WiFi (Mbps)", labels, labels,
                  [&](std::size_t row, std::size_t col) { return ratio[row][col]; },
                  /*lo=*/0.7, /*hi=*/1.3);
  }

  std::printf("\ncells ECF better: %d, cells ECF worse: %d (paper: better cells only,\n"
              "concentrated at slow-WiFi rows for >= 256 KB)\n",
              better_cells, worse_cells);
  return 0;
}
