// Scheduler fairness under competing traffic (beyond the paper's
// one-connection evaluation, cf. Dimopoulos et al. / QAware): 1/4/16/64
// MPTCP flows with Poisson churn share the wifi(8)/lte(10) testbed against a
// single-path LTE cross flow. Reports Jain's index over the MPTCP flows,
// aggregate goodput, link utilization, and mean flow completion time for
// all four schedulers. Deterministic at any MPS_BENCH_JOBS value.
//
// --prof-out FILE writes a ProfileReport (exp/prof_report.h) with the
// sweep's worker telemetry; stdout is byte-identical with or without it.
#include <chrono>
#include <fstream>

#include "bench/common.h"
#include "exp/prof_report.h"
#include "obs/prof.h"

int main(int argc, char** argv) {
  using namespace mps;
  using namespace mps::bench;

  const auto wall_start = std::chrono::steady_clock::now();
  std::string prof_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--prof-out" && i + 1 < argc) {
      prof_out = argv[++i];
    } else {
      std::fprintf(stderr, "bench_fairness: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  print_header(std::cout, "bench_fairness",
               "Fairness under 1/4/16/64 competing flows + LTE cross traffic", scale_note());

  const auto& scheds = paper_schedulers();
  const std::vector<int> flow_counts = {1, 4, 16, 64};
  const BenchScale& scale = bench_scale();
  const double duration_s = scale.name == "quick" ? 8.0 : scale.name == "full" ? 20.0 : 60.0;
  const std::int64_t flow_bytes = scale.name == "quick" ? 131072 : 262144;

  const std::size_t ns = scheds.size();
  SweepTelemetry sweep_telemetry;
  const auto flat = sweep_map<TrafficResult>(
      flow_counts.size() * ns,
      [&](std::size_t i) {
        const int flows = flow_counts[i / ns];
        return run_traffic(fairness_cell_spec(scheds[i % ns], flows, duration_s, flow_bytes));
      },
      SweepOptions{}, &sweep_telemetry);

  std::vector<std::string> rows;
  for (int f : flow_counts) rows.push_back(std::to_string(f));
  const std::vector<std::string> series = {"Default", "ECF", "DAPS", "BLEST"};
  const auto cell = [&](std::size_t g, std::size_t s) -> const TrafficResult& {
    // paper_schedulers() order is default, ecf, daps, blest.
    return flat[g * ns + s];
  };

  print_grouped(std::cout, "Jain fairness index over MPTCP flows", "flows", rows, series,
                [&](std::size_t g, std::size_t s) { return cell(g, s).jain; });
  print_grouped(std::cout, "aggregate goodput (Mbps, incl. cross)", "flows", rows, series,
                [&](std::size_t g, std::size_t s) { return cell(g, s).aggregate_goodput_mbps; });
  print_grouped(std::cout, "link utilization of 18 Mbps capacity", "flows", rows, series,
                [&](std::size_t g, std::size_t s) { return cell(g, s).utilization; });
  print_grouped(std::cout, "mean flow completion time (s)", "flows", rows, series,
                [&](std::size_t g, std::size_t s) { return cell(g, s).completion_s.mean(); });

  std::printf("\nexpected shape: utilization rises with flow count; fairness degrades as\n"
              "churn makes flows heterogeneous; no scheduler starves a flow outright\n");

  if (!prof_out.empty()) {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    ProfileReport report = build_profile_report(prof::snapshot(), wall_s);
    add_sweep_telemetry(report, sweep_telemetry);
    std::ofstream pf(prof_out);
    if (!pf) {
      std::fprintf(stderr, "bench_fairness: cannot write %s\n", prof_out.c_str());
      return 1;
    }
    pf << profile_report_to_json(report).dump(2) << "\n";
  }
  return 0;
}
