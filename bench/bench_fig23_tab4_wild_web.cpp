// Paper Fig. 23 + Table 4: in-the-wild web browsing (WDC profile) — CCDFs
// of object completion time and out-of-order delay, default vs ECF, plus
// the Table 4 averages (paper: completion 0.882 -> 0.650 s, -26%; OOO delay
// 0.297 -> 0.087 s, -71%).
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig23_tab4_wild_web",
               "Fig. 23 / Table 4 — in-the-wild web browsing, default vs ECF", scale_note());

  const WildRunProfile profile = wild_web_profile();
  const int web_runs = bench_scale().web_runs;
  const auto results = sweep_map<WebRunResult>(2, [&](std::size_t s) {
    const char* scheds[2] = {"default", "ecf"};
    ScenarioSpec spec = wild_spec(profile, scheds[s], /*jitter=*/false);
    spec.workload.kind = WorkloadKind::kWeb;
    spec.workload.runs = web_runs;
    spec.seed = 600;
    return run_web(spec);
  });

  {
    std::vector<std::pair<std::string, const Samples*>> series = {
        {"Default", &results[0].object_times}, {"ECF", &results[1].object_times}};
    print_distribution(std::cout, "(a) object download completion time", "time(s)", series,
                       /*ccdf=*/true, make_x_grid(series, 12));
  }
  {
    std::vector<std::pair<std::string, const Samples*>> series = {
        {"Default", &results[0].ooo_delay}, {"ECF", &results[1].ooo_delay}};
    print_distribution(std::cout, "(b) out-of-order delay", "delay(s)", series, /*ccdf=*/true,
                       make_x_grid(series, 12));
  }

  const double ct_def = results[0].object_times.mean();
  const double ct_ecf = results[1].object_times.mean();
  const double oo_def = results[0].ooo_delay.mean();
  const double oo_ecf = results[1].ooo_delay.mean();
  std::printf("\nTable 4 (measured vs paper):\n");
  std::printf("%28s %10s %10s %14s\n", "", "Default", "ECF", "improvement");
  std::printf("%28s %10.3f %10.3f %13.0f%%  (paper: 26%% shorter)\n",
              "completion time (s)", ct_def, ct_ecf, (1.0 - ct_ecf / ct_def) * 100.0);
  std::printf("%28s %10.3f %10.3f %13.0f%%  (paper: 71%% shorter)\n",
              "out-of-order delay (s)", oo_def, oo_ecf, (1.0 - oo_ecf / oo_def) * 100.0);
  return 0;
}
