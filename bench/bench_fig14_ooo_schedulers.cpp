// Paper Fig. 14: CCDF of out-of-order delay for all four schedulers under a
// heterogeneous (0.3/8.6) and a relatively symmetric (4.2/8.6) bandwidth
// pair. ECF must perform best under heterogeneity; little difference under
// symmetry.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig14_ooo_schedulers",
               "Fig. 14 — out-of-order delay CCDF per scheduler", scale_note());

  const auto& scheds = paper_schedulers();
  const std::pair<double, double> configs[2] = {{0.3, 8.6}, {4.2, 8.6}};
  const char* names[2] = {"(a) 0.3 Mbps WiFi / 8.6 Mbps LTE", "(b) 4.2 Mbps WiFi / 8.6 Mbps LTE"};

  const CellConfig cell;
  // One flat sweep over config x scheduler (config-major).
  const auto all = sweep_map<StreamingResult>(2 * scheds.size(), [&](std::size_t i) {
    const auto& cfg = configs[i / scheds.size()];
    return run_streaming_cell(cfg.first, cfg.second, scheds[i % scheds.size()], cell);
  });

  for (int c = 0; c < 2; ++c) {
    std::vector<StreamingResult> results(
        all.begin() + static_cast<std::ptrdiff_t>(c * scheds.size()),
        all.begin() + static_cast<std::ptrdiff_t>((c + 1) * scheds.size()));
    std::vector<std::pair<std::string, const Samples*>> series;
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      series.emplace_back(scheds[i], &results[i].ooo_delay);
    }
    print_distribution(std::cout, names[c], "delay(s)", series, /*ccdf=*/true,
                       make_x_grid(series, 14));
    std::printf("p90 delays: ");
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      std::printf("%s=%.3fs ", scheds[i].c_str(), results[i].ooo_delay.quantile(0.9));
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: (a) ecf smallest delays; (b) all similar except daps\n");
  return 0;
}
