# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/mptcp_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
