# Empty dependencies file for bench_fig23_tab4_wild_web.
# This may be replaced when dependencies are built.
