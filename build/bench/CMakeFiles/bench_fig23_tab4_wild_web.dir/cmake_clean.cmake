file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_tab4_wild_web.dir/bench_fig23_tab4_wild_web.cpp.o"
  "CMakeFiles/bench_fig23_tab4_wild_web.dir/bench_fig23_tab4_wild_web.cpp.o.d"
  "bench_fig23_tab4_wild_web"
  "bench_fig23_tab4_wild_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_tab4_wild_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
