# Empty compiler generated dependencies file for bench_fig13_ooo_default.
# This may be replaced when dependencies are built.
