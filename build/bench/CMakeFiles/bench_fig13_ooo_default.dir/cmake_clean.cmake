file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_ooo_default.dir/bench_fig13_ooo_default.cpp.o"
  "CMakeFiles/bench_fig13_ooo_default.dir/bench_fig13_ooo_default.cpp.o.d"
  "bench_fig13_ooo_default"
  "bench_fig13_ooo_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ooo_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
