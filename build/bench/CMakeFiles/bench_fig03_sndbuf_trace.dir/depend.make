# Empty dependencies file for bench_fig03_sndbuf_trace.
# This may be replaced when dependencies are built.
