# Empty dependencies file for bench_fig09_scheduler_heatmaps.
# This may be replaced when dependencies are built.
