file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_scheduler_heatmaps.dir/bench_fig09_scheduler_heatmaps.cpp.o"
  "CMakeFiles/bench_fig09_scheduler_heatmaps.dir/bench_fig09_scheduler_heatmaps.cpp.o.d"
  "bench_fig09_scheduler_heatmaps"
  "bench_fig09_scheduler_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_scheduler_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
