# Empty compiler generated dependencies file for bench_fig16_random_bw.
# This may be replaced when dependencies are built.
