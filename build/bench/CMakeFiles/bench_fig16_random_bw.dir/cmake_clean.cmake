file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_random_bw.dir/bench_fig16_random_bw.cpp.o"
  "CMakeFiles/bench_fig16_random_bw.dir/bench_fig16_random_bw.cpp.o.d"
  "bench_fig16_random_bw"
  "bench_fig16_random_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_random_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
