# Empty compiler generated dependencies file for bench_fig02_motivation_heatmap.
# This may be replaced when dependencies are built.
