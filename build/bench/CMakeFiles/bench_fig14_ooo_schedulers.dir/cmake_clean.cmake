file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ooo_schedulers.dir/bench_fig14_ooo_schedulers.cpp.o"
  "CMakeFiles/bench_fig14_ooo_schedulers.dir/bench_fig14_ooo_schedulers.cpp.o.d"
  "bench_fig14_ooo_schedulers"
  "bench_fig14_ooo_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ooo_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
