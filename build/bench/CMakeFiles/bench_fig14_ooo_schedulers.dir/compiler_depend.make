# Empty compiler generated dependencies file for bench_fig14_ooo_schedulers.
# This may be replaced when dependencies are built.
