# Empty dependencies file for bench_fig22_wild_streaming.
# This may be replaced when dependencies are built.
