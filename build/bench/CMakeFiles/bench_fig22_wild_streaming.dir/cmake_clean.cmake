file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_wild_streaming.dir/bench_fig22_wild_streaming.cpp.o"
  "CMakeFiles/bench_fig22_wild_streaming.dir/bench_fig22_wild_streaming.cpp.o.d"
  "bench_fig22_wild_streaming"
  "bench_fig22_wild_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_wild_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
