file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ecf.dir/bench_ablation_ecf.cpp.o"
  "CMakeFiles/bench_ablation_ecf.dir/bench_ablation_ecf.cpp.o.d"
  "bench_ablation_ecf"
  "bench_ablation_ecf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ecf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
