# Empty compiler generated dependencies file for bench_ablation_ecf.
# This may be replaced when dependencies are built.
