file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_web_ooo.dir/bench_fig21_web_ooo.cpp.o"
  "CMakeFiles/bench_fig21_web_ooo.dir/bench_fig21_web_ooo.cpp.o.d"
  "bench_fig21_web_ooo"
  "bench_fig21_web_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_web_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
