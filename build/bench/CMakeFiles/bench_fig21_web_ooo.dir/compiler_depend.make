# Empty compiler generated dependencies file for bench_fig21_web_ooo.
# This may be replaced when dependencies are built.
