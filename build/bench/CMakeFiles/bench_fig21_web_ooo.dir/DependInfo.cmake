
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig21_web_ooo.cpp" "bench/CMakeFiles/bench_fig21_web_ooo.dir/bench_fig21_web_ooo.cpp.o" "gcc" "bench/CMakeFiles/bench_fig21_web_ooo.dir/bench_fig21_web_ooo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mps_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/mps_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mps_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/mps_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mps_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
