# Empty dependencies file for bench_fig19_wget_ratio.
# This may be replaced when dependencies are built.
