file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_four_subflows.dir/bench_fig15_four_subflows.cpp.o"
  "CMakeFiles/bench_fig15_four_subflows.dir/bench_fig15_four_subflows.cpp.o.d"
  "bench_fig15_four_subflows"
  "bench_fig15_four_subflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_four_subflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
