# Empty dependencies file for bench_fig15_four_subflows.
# This may be replaced when dependencies are built.
