file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_iw_resets.dir/bench_tab03_iw_resets.cpp.o"
  "CMakeFiles/bench_tab03_iw_resets.dir/bench_tab03_iw_resets.cpp.o.d"
  "bench_tab03_iw_resets"
  "bench_tab03_iw_resets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_iw_resets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
