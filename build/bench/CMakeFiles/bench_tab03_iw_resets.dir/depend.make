# Empty dependencies file for bench_tab03_iw_resets.
# This may be replaced when dependencies are built.
