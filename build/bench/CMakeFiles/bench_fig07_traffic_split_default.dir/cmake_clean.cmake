file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_traffic_split_default.dir/bench_fig07_traffic_split_default.cpp.o"
  "CMakeFiles/bench_fig07_traffic_split_default.dir/bench_fig07_traffic_split_default.cpp.o.d"
  "bench_fig07_traffic_split_default"
  "bench_fig07_traffic_split_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_traffic_split_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
