file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_cwnd_traces.dir/bench_fig11_12_cwnd_traces.cpp.o"
  "CMakeFiles/bench_fig11_12_cwnd_traces.dir/bench_fig11_12_cwnd_traces.cpp.o.d"
  "bench_fig11_12_cwnd_traces"
  "bench_fig11_12_cwnd_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_cwnd_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
