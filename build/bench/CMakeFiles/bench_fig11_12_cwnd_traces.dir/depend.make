# Empty dependencies file for bench_fig11_12_cwnd_traces.
# This may be replaced when dependencies are built.
