# Empty dependencies file for bench_fig17_chunk_trace.
# This may be replaced when dependencies are built.
