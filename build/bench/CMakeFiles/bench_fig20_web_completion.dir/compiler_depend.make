# Empty compiler generated dependencies file for bench_fig20_web_completion.
# This may be replaced when dependencies are built.
