file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_web_completion.dir/bench_fig20_web_completion.cpp.o"
  "CMakeFiles/bench_fig20_web_completion.dir/bench_fig20_web_completion.cpp.o.d"
  "bench_fig20_web_completion"
  "bench_fig20_web_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_web_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
