# Empty dependencies file for bench_fig06_cwnd_reset.
# This may be replaced when dependencies are built.
