file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_cwnd_reset.dir/bench_fig06_cwnd_reset.cpp.o"
  "CMakeFiles/bench_fig06_cwnd_reset.dir/bench_fig06_cwnd_reset.cpp.o.d"
  "bench_fig06_cwnd_reset"
  "bench_fig06_cwnd_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_cwnd_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
