# Empty compiler generated dependencies file for bench_fig05_lastpacket_cdf.
# This may be replaced when dependencies are built.
