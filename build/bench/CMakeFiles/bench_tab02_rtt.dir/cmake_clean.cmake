file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_rtt.dir/bench_tab02_rtt.cpp.o"
  "CMakeFiles/bench_tab02_rtt.dir/bench_tab02_rtt.cpp.o.d"
  "bench_tab02_rtt"
  "bench_tab02_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
