# Empty compiler generated dependencies file for bench_fig18_wget.
# This may be replaced when dependencies are built.
