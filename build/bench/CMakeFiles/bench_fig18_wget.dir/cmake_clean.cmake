file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_wget.dir/bench_fig18_wget.cpp.o"
  "CMakeFiles/bench_fig18_wget.dir/bench_fig18_wget.cpp.o.d"
  "bench_fig18_wget"
  "bench_fig18_wget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_wget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
