# Empty dependencies file for mps_trace.
# This may be replaced when dependencies are built.
