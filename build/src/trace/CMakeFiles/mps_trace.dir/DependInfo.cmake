
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/emit.cpp" "src/trace/CMakeFiles/mps_trace.dir/emit.cpp.o" "gcc" "src/trace/CMakeFiles/mps_trace.dir/emit.cpp.o.d"
  "/root/repo/src/trace/series.cpp" "src/trace/CMakeFiles/mps_trace.dir/series.cpp.o" "gcc" "src/trace/CMakeFiles/mps_trace.dir/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mptcp/CMakeFiles/mps_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mps_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mps_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
