file(REMOVE_RECURSE
  "CMakeFiles/mps_trace.dir/emit.cpp.o"
  "CMakeFiles/mps_trace.dir/emit.cpp.o.d"
  "CMakeFiles/mps_trace.dir/series.cpp.o"
  "CMakeFiles/mps_trace.dir/series.cpp.o.d"
  "libmps_trace.a"
  "libmps_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
