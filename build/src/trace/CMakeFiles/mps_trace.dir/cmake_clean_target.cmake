file(REMOVE_RECURSE
  "libmps_trace.a"
)
