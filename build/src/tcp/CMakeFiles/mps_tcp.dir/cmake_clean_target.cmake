file(REMOVE_RECURSE
  "libmps_tcp.a"
)
