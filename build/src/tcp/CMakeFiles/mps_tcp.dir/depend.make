# Empty dependencies file for mps_tcp.
# This may be replaced when dependencies are built.
