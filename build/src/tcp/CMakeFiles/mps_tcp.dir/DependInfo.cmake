
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cc.cpp" "src/tcp/CMakeFiles/mps_tcp.dir/cc.cpp.o" "gcc" "src/tcp/CMakeFiles/mps_tcp.dir/cc.cpp.o.d"
  "/root/repo/src/tcp/rtt.cpp" "src/tcp/CMakeFiles/mps_tcp.dir/rtt.cpp.o" "gcc" "src/tcp/CMakeFiles/mps_tcp.dir/rtt.cpp.o.d"
  "/root/repo/src/tcp/subflow.cpp" "src/tcp/CMakeFiles/mps_tcp.dir/subflow.cpp.o" "gcc" "src/tcp/CMakeFiles/mps_tcp.dir/subflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
