file(REMOVE_RECURSE
  "CMakeFiles/mps_tcp.dir/cc.cpp.o"
  "CMakeFiles/mps_tcp.dir/cc.cpp.o.d"
  "CMakeFiles/mps_tcp.dir/rtt.cpp.o"
  "CMakeFiles/mps_tcp.dir/rtt.cpp.o.d"
  "CMakeFiles/mps_tcp.dir/subflow.cpp.o"
  "CMakeFiles/mps_tcp.dir/subflow.cpp.o.d"
  "libmps_tcp.a"
  "libmps_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
