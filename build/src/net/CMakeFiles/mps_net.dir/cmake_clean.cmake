file(REMOVE_RECURSE
  "CMakeFiles/mps_net.dir/link.cpp.o"
  "CMakeFiles/mps_net.dir/link.cpp.o.d"
  "CMakeFiles/mps_net.dir/path.cpp.o"
  "CMakeFiles/mps_net.dir/path.cpp.o.d"
  "CMakeFiles/mps_net.dir/varbw.cpp.o"
  "CMakeFiles/mps_net.dir/varbw.cpp.o.d"
  "CMakeFiles/mps_net.dir/wild.cpp.o"
  "CMakeFiles/mps_net.dir/wild.cpp.o.d"
  "libmps_net.a"
  "libmps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
