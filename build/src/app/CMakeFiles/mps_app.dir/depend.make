# Empty dependencies file for mps_app.
# This may be replaced when dependencies are built.
