file(REMOVE_RECURSE
  "CMakeFiles/mps_app.dir/dash.cpp.o"
  "CMakeFiles/mps_app.dir/dash.cpp.o.d"
  "CMakeFiles/mps_app.dir/http.cpp.o"
  "CMakeFiles/mps_app.dir/http.cpp.o.d"
  "CMakeFiles/mps_app.dir/web.cpp.o"
  "CMakeFiles/mps_app.dir/web.cpp.o.d"
  "libmps_app.a"
  "libmps_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
