file(REMOVE_RECURSE
  "libmps_app.a"
)
