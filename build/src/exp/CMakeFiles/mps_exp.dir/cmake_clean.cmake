file(REMOVE_RECURSE
  "CMakeFiles/mps_exp.dir/download.cpp.o"
  "CMakeFiles/mps_exp.dir/download.cpp.o.d"
  "CMakeFiles/mps_exp.dir/scale.cpp.o"
  "CMakeFiles/mps_exp.dir/scale.cpp.o.d"
  "CMakeFiles/mps_exp.dir/streaming.cpp.o"
  "CMakeFiles/mps_exp.dir/streaming.cpp.o.d"
  "CMakeFiles/mps_exp.dir/testbed.cpp.o"
  "CMakeFiles/mps_exp.dir/testbed.cpp.o.d"
  "CMakeFiles/mps_exp.dir/webrun.cpp.o"
  "CMakeFiles/mps_exp.dir/webrun.cpp.o.d"
  "libmps_exp.a"
  "libmps_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
