# Empty dependencies file for mps_exp.
# This may be replaced when dependencies are built.
