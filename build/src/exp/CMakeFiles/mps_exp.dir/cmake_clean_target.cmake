file(REMOVE_RECURSE
  "libmps_exp.a"
)
