file(REMOVE_RECURSE
  "libmps_mptcp.a"
)
