# Empty compiler generated dependencies file for mps_mptcp.
# This may be replaced when dependencies are built.
