file(REMOVE_RECURSE
  "CMakeFiles/mps_mptcp.dir/connection.cpp.o"
  "CMakeFiles/mps_mptcp.dir/connection.cpp.o.d"
  "libmps_mptcp.a"
  "libmps_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
