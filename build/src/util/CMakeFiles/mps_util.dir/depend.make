# Empty dependencies file for mps_util.
# This may be replaced when dependencies are built.
