file(REMOVE_RECURSE
  "CMakeFiles/mps_util.dir/log.cpp.o"
  "CMakeFiles/mps_util.dir/log.cpp.o.d"
  "CMakeFiles/mps_util.dir/stats.cpp.o"
  "CMakeFiles/mps_util.dir/stats.cpp.o.d"
  "CMakeFiles/mps_util.dir/time.cpp.o"
  "CMakeFiles/mps_util.dir/time.cpp.o.d"
  "libmps_util.a"
  "libmps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
