file(REMOVE_RECURSE
  "CMakeFiles/mps_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mps_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mps_sim.dir/simulator.cpp.o"
  "CMakeFiles/mps_sim.dir/simulator.cpp.o.d"
  "libmps_sim.a"
  "libmps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
