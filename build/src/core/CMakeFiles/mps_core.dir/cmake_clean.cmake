file(REMOVE_RECURSE
  "CMakeFiles/mps_core.dir/ecf.cpp.o"
  "CMakeFiles/mps_core.dir/ecf.cpp.o.d"
  "CMakeFiles/mps_core.dir/scheduler_util.cpp.o"
  "CMakeFiles/mps_core.dir/scheduler_util.cpp.o.d"
  "libmps_core.a"
  "libmps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
