file(REMOVE_RECURSE
  "libmps_sched.a"
)
