# Empty compiler generated dependencies file for mps_sched.
# This may be replaced when dependencies are built.
