file(REMOVE_RECURSE
  "CMakeFiles/mps_sched.dir/blest.cpp.o"
  "CMakeFiles/mps_sched.dir/blest.cpp.o.d"
  "CMakeFiles/mps_sched.dir/daps.cpp.o"
  "CMakeFiles/mps_sched.dir/daps.cpp.o.d"
  "CMakeFiles/mps_sched.dir/registry.cpp.o"
  "CMakeFiles/mps_sched.dir/registry.cpp.o.d"
  "libmps_sched.a"
  "libmps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
