// Simple file downloads (the paper's wget workload, Section 5.4): sweep file
// sizes on a heterogeneous pair and compare schedulers side by side.
//
//   ./build/examples/file_download [wifi_mbps] [lte_mbps]
#include <cstdio>
#include <cstdlib>

#include "exp/download.h"
#include "sched/registry.h"

int main(int argc, char** argv) {
  using namespace mps;

  const double wifi_mbps = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double lte_mbps = argc > 2 ? std::atof(argv[2]) : 10.0;

  std::printf("download completion time (s), %.1f Mbps WiFi + %.1f Mbps LTE\n\n", wifi_mbps,
              lte_mbps);
  std::printf("%10s", "size");
  for (const auto& sched : paper_schedulers()) std::printf("%12s", sched.c_str());
  std::printf("\n");

  for (std::uint64_t kb : {64, 128, 256, 512, 1024, 2048, 4096}) {
    std::printf("%8lluKB", static_cast<unsigned long long>(kb));
    for (const auto& sched : paper_schedulers()) {
      DownloadParams p;
      p.wifi_mbps = wifi_mbps;
      p.lte_mbps = lte_mbps;
      p.bytes = kb * 1024;
      p.scheduler = sched;
      std::printf("%12.3f", run_download(p).completion.to_seconds());
    }
    std::printf("\n");
  }
  std::printf("\n(ECF should never lose to default, with gains at larger sizes\n"
              "under strong heterogeneity; cf. paper Figs. 18/19.)\n");
  return 0;
}
