// General-purpose scenario runner: the library's workloads behind one CLI,
// for quick exploration without writing code.
//
//   run_scenario <workload> [options]
//     workload:   stream | download | web
//     --wifi M    WiFi downlink Mbps          (default 1.0)
//     --lte M     LTE downlink Mbps           (default 10.0)
//     --sched S   default|ecf|blest|daps|rr|single|redundant (default ecf)
//     --cc C      lia|olia|reno|cubic         (default lia)
//     --bytes N   download size in bytes      (download only, default 1 MiB)
//     --video S   video length in seconds     (stream only, default 180)
//     --seed N    RNG seed                    (default 1)
//
//   examples:
//     run_scenario stream --wifi 0.3 --lte 8.6 --sched default
//     run_scenario download --bytes 2097152 --sched ecf
//     run_scenario web --wifi 1 --lte 10 --sched blest
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/download.h"
#include "exp/ideal.h"
#include "exp/streaming.h"
#include "exp/webrun.h"

namespace {

mps::CcKind parse_cc(const std::string& name) {
  if (name == "olia") return mps::CcKind::kOlia;
  if (name == "reno") return mps::CcKind::kReno;
  if (name == "cubic") return mps::CcKind::kCubic;
  return mps::CcKind::kLia;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mps;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s stream|download|web [--wifi M] [--lte M] [--sched S]\n",
                 argv[0]);
    return 2;
  }
  const std::string workload = argv[1];
  double wifi = 1.0, lte = 10.0;
  std::string sched = "ecf", cc = "lia";
  std::uint64_t bytes = 1 << 20, seed = 1;
  int video_s = 180;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--wifi") wifi = std::atof(value);
    else if (flag == "--lte") lte = std::atof(value);
    else if (flag == "--sched") sched = value;
    else if (flag == "--cc") cc = value;
    else if (flag == "--bytes") bytes = std::strtoull(value, nullptr, 10);
    else if (flag == "--video") video_s = std::atoi(value);
    else if (flag == "--seed") seed = std::strtoull(value, nullptr, 10);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  if (workload == "stream") {
    StreamingParams p;
    p.wifi_mbps = wifi;
    p.lte_mbps = lte;
    p.scheduler = sched;
    p.cc = parse_cc(cc);
    p.video = Duration::seconds(video_s);
    p.seed = seed;
    const auto r = run_streaming(p);
    std::printf("stream %s %.1f/%.1f Mbps: bitrate %.2f Mbps (ideal %.2f), tput %.2f Mbps,\n"
                "  fast-path fraction %.2f, lte IW resets %llu, ooo p50/p99 %.3f/%.3f s,\n"
                "  rebuffer %.1f s\n",
                sched.c_str(), wifi, lte, r.mean_bitrate_mbps, ideal_bitrate_mbps(wifi, lte),
                r.mean_throughput_mbps, r.fraction_fast,
                static_cast<unsigned long long>(r.iw_resets_lte), r.ooo_delay.quantile(0.5),
                r.ooo_delay.quantile(0.99), r.rebuffer_time.to_seconds());
  } else if (workload == "download") {
    DownloadParams p;
    p.wifi_mbps = wifi;
    p.lte_mbps = lte;
    p.scheduler = sched;
    p.cc = parse_cc(cc);
    p.bytes = bytes;
    p.seed = seed;
    const auto r = run_download(p);
    std::printf("download %s %llu bytes over %.1f/%.1f Mbps: %.3f s "
                "(fast-path fraction %.2f)\n",
                sched.c_str(), static_cast<unsigned long long>(bytes), wifi, lte,
                r.completion.to_seconds(), r.fraction_fast);
  } else if (workload == "web") {
    WebRunParams p;
    p.wifi_mbps = wifi;
    p.lte_mbps = lte;
    p.scheduler = sched;
    p.cc = parse_cc(cc);
    p.runs = 1;
    p.seed = seed;
    const auto r = run_web(p);
    std::printf("web %s %.1f/%.1f Mbps: page %.2f s, object mean/p90/p99 "
                "%.3f/%.3f/%.3f s, ooo p99 %.3f s\n",
                sched.c_str(), wifi, lte, r.mean_page_load_s, r.object_times.mean(),
                r.object_times.quantile(0.9), r.object_times.quantile(0.99),
                r.ooo_delay.quantile(0.99));
  } else {
    std::fprintf(stderr, "unknown workload %s\n", workload.c_str());
    return 2;
  }
  return 0;
}
