// Quickstart: build a two-path testbed, run a 2 MB download under the
// default and ECF schedulers, and print what each did.
//
//   ./build/examples/quickstart
//
// This is the smallest end-to-end use of the public API: Testbed (paths +
// simulator), Connection (MPTCP), HttpExchange (request/response), and the
// scheduler registry.
#include <cstdio>

#include "app/http.h"
#include "exp/testbed.h"
#include "sched/registry.h"

int main() {
  using namespace mps;

  for (const char* sched : {"default", "ecf"}) {
    // A heterogeneous pair: slow WiFi (primary), fast LTE.
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(1.0));
    tb.lte = lte_profile(Rate::mbps(10.0));
    Testbed bed(tb);

    auto conn = bed.make_connection(scheduler_factory(sched));
    HttpExchange http(bed.sim(), *conn, bed.request_delay());

    Duration completion = Duration::zero();
    http.get(2 * 1024 * 1024, [&](const ObjectResult& r) {
      completion = r.completed - r.requested;
      bed.sim().request_stop();
    });
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));

    const auto& subflows = conn->subflows();
    std::printf("%-8s completed 2 MiB in %6.3f s  (wifi %6.1f KiB, lte %6.1f KiB, "
                "ooo-delay p99 %5.1f ms)\n",
                sched, completion.to_seconds(),
                subflows[0]->stats().bytes_sent / 1024.0,
                subflows[1]->stats().bytes_sent / 1024.0,
                conn->ooo_delay().quantile(0.99) * 1e3);
  }
  return 0;
}
