// Quickstart: build a two-path testbed, run a 2 MB download under the
// default and ECF schedulers, and print what each did.
//
//   ./build/examples/quickstart
//   ./build/examples/quickstart --trace-out events.jsonl
//
// This is the smallest end-to-end use of the public API: Testbed (paths +
// simulator), Connection (MPTCP), HttpExchange (request/response), the
// scheduler registry, and the flight recorder. With --trace-out, every
// structured stack event (packet sends/acks, losses, scheduler picks and
// ECF waits) is written as one JSON object per line.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "app/http.h"
#include "exp/testbed.h"
#include "obs/recorder.h"
#include "sched/registry.h"

int main(int argc, char** argv) {
  using namespace mps;

  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }

  std::ofstream trace_file;
  if (trace_path != nullptr) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
      return 1;
    }
  }

  for (const char* sched : {"default", "ecf"}) {
    // One recorder per run; the JSONL sink (if requested) sees both runs.
    FlightRecorder recorder;
    std::unique_ptr<JsonlSink> sink;
    if (trace_path != nullptr) {
      sink = std::make_unique<JsonlSink>(trace_file);
      recorder.set_event_sink(sink.get());
    }

    // A strongly heterogeneous pair — the paper testbed's extreme cell:
    // 0.3 Mbps WiFi (primary) against 8.6 Mbps LTE. This is the regime where
    // ECF's wait-for-the-fast-path decisions actually fire, so the trace
    // contains sched_wait records with the Algorithm 1 terms.
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(0.3));
    tb.lte = lte_profile(Rate::mbps(8.6));
    tb.recorder = &recorder;
    Testbed bed(tb);

    auto conn = bed.make_connection(scheduler_factory(sched));
    HttpExchange http(bed.sim(), *conn, bed.request_delay());

    Duration completion = Duration::zero();
    http.get(2 * 1024 * 1024, [&](const ObjectResult& r) {
      completion = r.completed - r.requested;
      bed.sim().request_stop();
    });
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));

    const auto& subflows = conn->subflows();
    std::printf("%-8s completed 2 MiB in %6.3f s  (wifi %6.1f KiB, lte %6.1f KiB, "
                "ooo-delay p99 %5.1f ms)\n",
                sched, completion.to_seconds(),
                subflows[0]->stats().bytes_sent / 1024.0,
                subflows[1]->stats().bytes_sent / 1024.0,
                conn->ooo_delay().quantile(0.99) * 1e3);
    std::fflush(stdout);

    std::printf("--- flight recorder: %s ---\n", sched);
    std::fflush(stdout);
    recorder.summarize(std::cout);
    std::cout.flush();
  }

  if (trace_path != nullptr) {
    std::printf("trace written to %s\n", trace_path);
  }
  return 0;
}
