// Writing your own MPTCP path scheduler against the library's extension
// point — the primary downstream use case of this codebase.
//
//   ./build/examples/custom_scheduler
//
// Implements a toy "latest-RTT threshold" scheduler in ~20 lines, runs it
// against ECF and the default on a heterogeneous pair, and prints the
// comparison. See src/mptcp/scheduler.h for the interface contract.
#include <cstdio>
#include <memory>

#include "app/http.h"
#include "core/scheduler_util.h"
#include "exp/testbed.h"
#include "mptcp/scheduler.h"
#include "sched/registry.h"

namespace {

using namespace mps;

// Toy policy: use any subflow whose RTT estimate is within 4x of the best
// subflow's; otherwise wait for the fast one. (Simpler than ECF: ignores
// CWND and backlog, so it waits too much with plenty of data and too little
// near transfer tails.)
class RttThresholdScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override {
    Subflow* fastest = fastest_established(conn);
    if (fastest == nullptr) return nullptr;
    if (fastest->can_accept()) return fastest;
    Subflow* next = fastest_available(conn, fastest);
    if (next == nullptr) return nullptr;
    const bool close_enough =
        next->rtt_estimate().to_seconds() < 4.0 * fastest->rtt_estimate().to_seconds();
    return close_enough ? next : nullptr;
  }
  const char* name() const override { return "rtt-threshold"; }
};

double run_one(const SchedulerFactory& factory, const char* label) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(0.7));
  tb.lte = lte_profile(Rate::mbps(8.6));
  Testbed bed(tb);
  auto conn = bed.make_connection(factory);
  HttpExchange http(bed.sim(), *conn, bed.request_delay());

  double completion = 0.0;
  http.get(4 * 1024 * 1024, [&](const ObjectResult& r) {
    completion = (r.completed - r.requested).to_seconds();
    bed.sim().request_stop();
  });
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(300));
  std::printf("%-14s 4 MiB in %6.2f s (wifi %5.1f%%, ooo p99 %6.1f ms)\n", label, completion,
              100.0 * conn->subflows()[0]->stats().bytes_sent /
                  (conn->subflows()[0]->stats().bytes_sent +
                   conn->subflows()[1]->stats().bytes_sent),
              conn->ooo_delay().quantile(0.99) * 1e3);
  return completion;
}

}  // namespace

int main() {
  run_one(scheduler_factory("default"), "default");
  run_one([] { return std::make_unique<RttThresholdScheduler>(); }, "rtt-threshold");
  run_one(scheduler_factory("ecf"), "ecf");
  return 0;
}
