// Adaptive video streaming over heterogeneous paths — the paper's motivating
// scenario (Sections 3 and 5.2).
//
//   ./build/examples/video_streaming [wifi_mbps] [lte_mbps] [scheduler]
//
// Streams a 3-minute DASH session (paper Table 1 bitrate ladder, 5 s chunks,
// buffer-based ABR) and reports per-chunk behaviour plus the session
// summary. Compare `default` and `ecf` at 0.3 / 8.6 Mbps to see the effect
// the paper describes: the default scheduler strands the fast LTE path at
// every chunk tail, resets its window, and locks the player into a lower
// rendition.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/dash.h"
#include "app/http.h"
#include "exp/ideal.h"
#include "exp/testbed.h"
#include "sched/registry.h"

int main(int argc, char** argv) {
  using namespace mps;

  const double wifi_mbps = argc > 1 ? std::atof(argv[1]) : 0.3;
  const double lte_mbps = argc > 2 ? std::atof(argv[2]) : 8.6;
  const std::string sched = argc > 3 ? argv[3] : "ecf";

  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(wifi_mbps));
  tb.lte = lte_profile(Rate::mbps(lte_mbps));
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory(sched));
  HttpExchange http(bed.sim(), *conn, bed.request_delay());

  DashConfig dc;
  dc.video_duration = Duration::seconds(180);
  DashSession session(bed.sim(), http, dc);
  session.on_finished = [&] { bed.sim().request_stop(); };

  std::printf("streaming %.1f Mbps WiFi + %.1f Mbps LTE, scheduler=%s\n", wifi_mbps, lte_mbps,
              sched.c_str());
  std::printf("%6s %8s %10s %8s %10s\n", "chunk", "rate", "bytes", "dl(s)", "tput(Mbps)");

  session.start();
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(3600));

  for (const auto& c : session.chunks()) {
    std::printf("%6d %8.2f %10llu %8.2f %10.2f\n", c.index, c.bitrate_mbps,
                static_cast<unsigned long long>(c.bytes),
                (c.fetch_end - c.fetch_start).to_seconds(), c.throughput_mbps);
  }

  const auto& subflows = conn->subflows();
  std::printf("\nsession summary\n");
  std::printf("  mean bitrate        %6.2f Mbps (ideal %.2f)\n", session.mean_bitrate_mbps(),
              ideal_bitrate_mbps(wifi_mbps, lte_mbps));
  std::printf("  mean throughput     %6.2f Mbps\n", session.mean_throughput_mbps());
  std::printf("  rebuffer time       %6.2f s (%d events)\n",
              session.rebuffer_time().to_seconds(), session.rebuffer_events());
  std::printf("  wifi / lte bytes    %6.1f / %.1f MB\n",
              subflows[0]->stats().bytes_sent / 1e6, subflows[1]->stats().bytes_sent / 1e6);
  std::printf("  lte IW resets       %6llu\n",
              static_cast<unsigned long long>(subflows[1]->stats().iw_resets));
  std::printf("  ooo delay p50/p99   %6.3f / %.3f s\n", conn->ooo_delay().quantile(0.5),
              conn->ooo_delay().quantile(0.99));
  return 0;
}
