// Web browsing over MPTCP — the paper's Section 5.5 workload: a 107-object
// page over six parallel persistent connections.
//
//   ./build/examples/web_browsing [wifi_mbps] [lte_mbps]
//
// Loads the page once per scheduler and prints the completion-time
// distribution, page load time, and idle-reset counts.
#include <cstdio>
#include <cstdlib>

#include "app/web.h"
#include "exp/testbed.h"
#include "sched/registry.h"

int main(int argc, char** argv) {
  using namespace mps;

  const double wifi_mbps = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double lte_mbps = argc > 2 ? std::atof(argv[2]) : 10.0;

  std::printf("CNN-page model: 107 objects over 6 connections, %.1f/%.1f Mbps\n\n", wifi_mbps,
              lte_mbps);
  std::printf("%-10s %10s %10s %10s %12s %10s\n", "scheduler", "mean(s)", "p90(s)", "p99(s)",
              "page(s)", "IW resets");

  for (const auto& sched : paper_schedulers()) {
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(wifi_mbps));
    tb.lte = lte_profile(Rate::mbps(lte_mbps));
    Testbed bed(tb);

    WebPageConfig wc;
    Rng page_rng(0xC0FFEE);  // identical page for every scheduler
    auto objects = make_page_objects(page_rng, wc);

    const SchedulerFactory factory = scheduler_factory(sched);
    WebBrowser browser(bed.sim(), wc, std::move(objects),
                       [&] { return bed.make_connection(factory); });
    browser.on_finished = [&] { bed.sim().request_stop(); };
    browser.start();
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));

    const Samples& times = browser.object_times();
    std::printf("%-10s %10.3f %10.3f %10.3f %12.2f %10llu\n", sched.c_str(), times.mean(),
                times.quantile(0.9), times.quantile(0.99),
                browser.page_load_time().to_seconds(),
                static_cast<unsigned long long>(browser.iw_resets()));
  }
  return 0;
}
