// mps_stress — seeded invariant-checked stress sweep over fault profiles.
//
//   mps_stress [--seeds N] [--bytes B] [--profiles a,b,...]
//              [--schedulers a,b,...] [--ccs a,b,...] [--verbose]
//
// Runs every (profile x scheduler x cc x seed) cell of the grid as a two-path
// download with an InvariantChecker attached (check/stress.h), in parallel
// (MPS_BENCH_JOBS workers, like the bench sweeps). Prints a per-profile
// summary and every violation, and exits nonzero if any cell stalled or
// tripped an invariant — so running this binary under ASan is the
// "find the bugs hiding in the loss/recovery paths" gate.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "check/stress.h"
#include "exp/sweep.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i <= s.size()) {
    std::size_t j = s.find(',', i);
    if (j == std::string::npos) j = s.size();
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 8;
  std::uint64_t bytes = 512 * 1024;
  std::vector<std::string> profiles = mps::stress_profile_names();
  std::vector<std::string> schedulers = {"default", "ecf",    "blest", "daps",
                                         "rr",      "redundant", "qaware", "oco"};
  std::vector<std::string> ccs = {"lia"};
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mps_stress: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--bytes") {
      bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--profiles") {
      profiles = split_csv(next());
    } else if (arg == "--schedulers") {
      schedulers = split_csv(next());
    } else if (arg == "--ccs") {
      ccs = split_csv(next());
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: mps_stress [--seeds N] [--bytes B] [--profiles a,b,...]\n"
                   "                  [--schedulers a,b,...] [--ccs a,b,...] [--verbose]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  std::vector<mps::StressCell> cells;
  for (const std::string& profile : profiles) {
    for (const std::string& sched : schedulers) {
      for (const std::string& cc : ccs) {
        for (std::uint64_t s = 0; s < seeds; ++s) {
          mps::StressCell c;
          c.profile = profile;
          c.scheduler = sched;
          c.cc = cc;
          c.seed = 1 + s;
          c.bytes = bytes;
          cells.push_back(c);
        }
      }
    }
  }

  std::printf(
      "mps_stress: %zu cells (%zu profiles x %zu schedulers x %zu ccs x %llu seeds), %d jobs\n",
      cells.size(), profiles.size(), schedulers.size(), ccs.size(), (unsigned long long)seeds,
      mps::sweep_jobs());

  const std::vector<mps::StressCellResult> results = mps::sweep_map<mps::StressCellResult>(
      cells.size(), [&](std::size_t i) { return mps::run_stress_cell(cells[i]); });

  struct ProfileAgg {
    std::size_t cells = 0, failed = 0;
    std::uint64_t drops = 0, reordered = 0, retransmits = 0, rtos = 0, checks = 0;
  };
  std::map<std::string, ProfileAgg> by_profile;
  std::size_t failed = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const mps::StressCell& c = cells[i];
    const mps::StressCellResult& r = results[i];
    ProfileAgg& agg = by_profile[c.profile];
    ++agg.cells;
    agg.drops += r.drops_random + r.drops_fault;
    agg.reordered += r.reordered;
    agg.retransmits += r.retransmits;
    agg.rtos += r.rto_events;
    agg.checks += r.checks_run;
    if (verbose) {
      std::printf("  %-12s %-9s %-6s seed=%-3llu %s t=%.3fs rtx=%llu rto=%llu drops=%llu\n",
                  c.profile.c_str(), c.scheduler.c_str(), c.cc.c_str(),
                  (unsigned long long)c.seed, r.ok() ? "ok  " : "FAIL", r.completion_s,
                  (unsigned long long)r.retransmits, (unsigned long long)r.rto_events,
                  (unsigned long long)(r.drops_random + r.drops_fault));
    }
    if (!r.ok()) {
      ++failed;
      ++agg.failed;
      std::printf("FAIL %s/%s/%s seed=%llu:\n", c.profile.c_str(), c.scheduler.c_str(),
                  c.cc.c_str(), (unsigned long long)c.seed);
      std::size_t shown = 0;
      for (const std::string& v : r.violations) {
        if (shown++ >= 8) {
          std::printf("    ... (%zu more)\n", r.violations.size() - 8);
          break;
        }
        std::printf("    %s\n", v.c_str());
      }
    }
  }

  std::printf("%-12s %6s %6s %10s %9s %9s %6s %12s\n", "profile", "cells", "fail", "drops",
              "reorder", "rtx", "rto", "checks");
  for (const auto& [name, agg] : by_profile) {
    std::printf("%-12s %6zu %6zu %10llu %9llu %9llu %6llu %12llu\n", name.c_str(), agg.cells,
                agg.failed, (unsigned long long)agg.drops, (unsigned long long)agg.reordered,
                (unsigned long long)agg.retransmits, (unsigned long long)agg.rtos,
                (unsigned long long)agg.checks);
  }

  if (failed != 0) {
    std::printf("mps_stress: %zu/%zu cells FAILED\n", failed, cells.size());
    return 1;
  }
  std::printf("mps_stress: all %zu cells ok\n", cells.size());
  return 0;
}
