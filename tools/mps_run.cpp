// mps_run — execute a scenario spec file (scenarios/*.json).
//
//   mps_run <spec.json> [--set key=value]... [--print-spec]
//
//   --set key=value   Override a field of the JSON document before it is
//                     parsed into a ScenarioSpec. `key` is a dotted path;
//                     array elements use [i]:
//                       --set scheduler=ecf
//                       --set workload.video_s=5
//                       --set paths[0].rate_mbps=0.3
//                     The value is parsed as JSON when possible (numbers,
//                     booleans, arrays), otherwise taken as a bare string.
//   --print-spec      Print the effective spec (defaults filled in,
//                     overrides applied) and exit without running.
//
// The run goes through the same spec -> params conversion as the bench
// drivers (exp/scenario_run.h), so a preset that mirrors a bench cell
// reproduces that cell's numbers exactly.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/ideal.h"
#include "exp/scenario_run.h"
#include "obs/recorder.h"

namespace {

using mps::Json;

// Splits "paths[0].rate_mbps" into navigation steps and walks the document,
// creating intermediate objects as needed. Array elements must already exist.
Json* navigate(Json& root, const std::string& path, std::string* err) {
  Json* node = &root;
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t j = i;
    while (j < path.size() && path[j] != '.' && path[j] != '[') ++j;
    const std::string key = path.substr(i, j - i);
    if (key.empty()) {
      *err = "empty key segment in --set path '" + path + "'";
      return nullptr;
    }
    node = &(*node)[key];  // insert-or-get; promotes null to object
    // Zero or more [idx] segments.
    while (j < path.size() && path[j] == '[') {
      const std::size_t close = path.find(']', j);
      if (close == std::string::npos) {
        *err = "unterminated [ in --set path '" + path + "'";
        return nullptr;
      }
      const std::string idx_text = path.substr(j + 1, close - j - 1);
      std::size_t idx = 0;
      try {
        idx = static_cast<std::size_t>(std::stoul(idx_text));
      } catch (const std::exception&) {
        *err = "bad array index '" + idx_text + "' in --set path '" + path + "'";
        return nullptr;
      }
      if (!node->is_array() || idx >= node->items().size()) {
        *err = "array index " + idx_text + " out of range in --set path '" + path + "'";
        return nullptr;
      }
      node = &node->items()[idx];
      j = close + 1;
    }
    if (j < path.size()) {
      if (path[j] != '.') {
        *err = "expected '.' after ']' in --set path '" + path + "'";
        return nullptr;
      }
      ++j;
    }
    i = j;
  }
  return node;
}

Json parse_override_value(const std::string& text) {
  try {
    return Json::parse(text);
  } catch (const mps::JsonError&) {
    return Json::string(text);  // bare words are strings: --set scheduler=ecf
  }
}

void print_streaming(const mps::ScenarioSpec& spec, const mps::StreamingParams& p,
                     const mps::StreamingResult& r) {
  std::printf("stream %s %.2f/%.2f Mbps (%lld run%s): bitrate %.2f Mbps (ideal %.2f),\n"
              "  tput %.2f Mbps, fast-path fraction %.2f, lte IW resets %llu,\n"
              "  rtt wifi/lte %.0f/%.0f ms, ooo p50/p99 %.3f/%.3f s, rebuffer %.1f s\n",
              spec.scheduler.c_str(), p.wifi_mbps, p.lte_mbps,
              static_cast<long long>(spec.workload.runs), spec.workload.runs == 1 ? "" : "s",
              r.mean_bitrate_mbps, mps::ideal_bitrate_mbps(p.wifi_mbps, p.lte_mbps),
              r.mean_throughput_mbps, r.fraction_fast,
              static_cast<unsigned long long>(r.iw_resets_lte), r.mean_rtt_wifi_ms,
              r.mean_rtt_lte_ms, r.ooo_delay.quantile(0.5), r.ooo_delay.quantile(0.99),
              r.rebuffer_time.to_seconds());
}

void print_download(const mps::ScenarioSpec& spec, const mps::ScenarioOutcome& out) {
  std::printf("download %s %lld bytes (%lld run%s): mean %.3f s",
              spec.scheduler.c_str(), static_cast<long long>(spec.workload.bytes),
              static_cast<long long>(spec.workload.runs), spec.workload.runs == 1 ? "" : "s",
              out.download_completions.mean());
  if (spec.workload.runs > 1) {
    std::printf(" (min %.3f, max %.3f)", out.download_completions.min(),
                out.download_completions.max());
  }
  std::printf(", fast-path fraction %.2f\n", out.download.fraction_fast);
}

void print_web(const mps::ScenarioSpec& spec, const mps::WebRunResult& r) {
  std::printf("web %s (%lld run%s): page %.2f s, object mean/p90/p99 %.3f/%.3f/%.3f s, "
              "ooo p99 %.3f s\n",
              spec.scheduler.c_str(), static_cast<long long>(spec.workload.runs),
              spec.workload.runs == 1 ? "" : "s", r.mean_page_load_s, r.object_times.mean(),
              r.object_times.quantile(0.9), r.object_times.quantile(0.99),
              r.ooo_delay.quantile(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mps;

  if (argc < 2 || std::string(argv[1]) == "--help") {
    std::fprintf(stderr,
                 "usage: %s <spec.json> [--set key=value]... [--print-spec]\n"
                 "  e.g. %s scenarios/tab02_rtt_cell.json --set scheduler=blest\n",
                 argv[0], argv[0]);
    return 2;
  }

  const std::string spec_path = argv[1];
  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "mps_run: cannot open %s\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  bool print_spec = false;
  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const JsonError& e) {
    std::fprintf(stderr, "mps_run: %s: %s\n", spec_path.c_str(), e.what());
    return 1;
  }

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "mps_run: --set expects key=value, got '%s'\n", kv.c_str());
        return 2;
      }
      std::string err;
      Json* node = navigate(doc, kv.substr(0, eq), &err);
      if (!node) {
        std::fprintf(stderr, "mps_run: %s\n", err.c_str());
        return 2;
      }
      *node = parse_override_value(kv.substr(eq + 1));
    } else {
      std::fprintf(stderr, "mps_run: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  ScenarioSpec spec;
  try {
    spec = scenario_from_json(doc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mps_run: %s: %s\n", spec_path.c_str(), e.what());
    return 1;
  }

  if (print_spec) {
    std::printf("%s\n", serialize_scenario(spec).c_str());
    return 0;
  }

  if (!spec.name.empty()) std::printf("scenario: %s\n", spec.name.c_str());

  try {
    ScenarioRunOptions opts;
    FlightRecorder recorder;
    // The flight recorder is plumbed through the streaming runner only.
    if (spec.record.summarize && spec.workload.kind == WorkloadKind::kStream) {
      opts.recorder = &recorder;
    }
    const ScenarioOutcome out = run_scenario(spec, opts);
    switch (out.kind) {
      case WorkloadKind::kStream:
        print_streaming(spec, streaming_params_from_spec(spec, opts), out.streaming);
        break;
      case WorkloadKind::kDownload:
        print_download(spec, out);
        break;
      case WorkloadKind::kWeb:
        print_web(spec, out.web);
        break;
    }
    if (opts.recorder) {
      std::printf("\n--- flight recorder ---\n");
      std::ostringstream report;
      recorder.summarize(report);
      std::fputs(report.str().c_str(), stdout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mps_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
