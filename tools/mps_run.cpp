// mps_run — execute a scenario spec file (scenarios/*.json).
//
//   mps_run <spec.json> [--set key=value]... [--print-spec]
//           [--prof-out FILE] [--progress[=SECS]]
//           [--snapshot-at=SECS] [--fork=K]
//
//   --set key=value   Override a field of the JSON document before it is
//                     parsed into a ScenarioSpec. `key` is a dotted path;
//                     array elements use [i]:
//                       --set scheduler=ecf
//                       --set workload.video_s=5
//                       --set paths[0].rate_mbps=0.3
//                     The value is parsed as JSON when possible (numbers,
//                     booleans, arrays), otherwise taken as a bare string.
//   --print-spec      Print the effective spec (defaults filled in,
//                     overrides applied) and exit without running.
//   --prof-out FILE   Write a ProfileReport (exp/prof_report.h, schema
//                     mps.profile.v1) for the run. Always valid JSON; the
//                     scope/memory tables carry data only when the binary
//                     was built with -DMPS_PROF=ON. Never changes stdout.
//   --progress[=SECS] Heartbeat to stderr roughly every SECS wall seconds
//                     (default 1.0) while the simulation runs: events/s,
//                     sim/wall ratio, flow counts when a recorder is
//                     attached. Driven purely by the wall clock, so it can
//                     never perturb the run (see Simulator::set_heartbeat).
//   --snapshot-at=SECS
//                     Snapshot-and-fork exercise (exp/snapshot.h): pause
//                     each repetition at sim time SECS, fork it, discard
//                     the original, and finish the fork. Output is
//                     byte-identical to the plain run — this flag smokes
//                     the fork machinery end to end (check.sh --snapshot).
//   --fork=K          With --snapshot-at: fork K copies at the snapshot
//                     point, finish all of them, and verify their rendered
//                     outcomes are identical before printing; a `fork-check`
//                     line reports the verdict to stderr.
//
// The run goes through the same spec -> params conversion as the bench
// drivers (exp/scenario_run.h), so a preset that mirrors a bench cell
// reproduces that cell's numbers exactly.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/prof_report.h"
#include "exp/scenario_run.h"
#include "exp/snapshot.h"
#include "obs/prof.h"
#include "obs/recorder.h"

namespace {

using mps::Json;

// Splits "paths[0].rate_mbps" into navigation steps and walks the document,
// creating intermediate objects as needed. Array elements must already exist.
Json* navigate(Json& root, const std::string& path, std::string* err) {
  Json* node = &root;
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t j = i;
    while (j < path.size() && path[j] != '.' && path[j] != '[') ++j;
    const std::string key = path.substr(i, j - i);
    if (key.empty()) {
      *err = "empty key segment in --set path '" + path + "'";
      return nullptr;
    }
    node = &(*node)[key];  // insert-or-get; promotes null to object
    // Zero or more [idx] segments.
    while (j < path.size() && path[j] == '[') {
      const std::size_t close = path.find(']', j);
      if (close == std::string::npos) {
        *err = "unterminated [ in --set path '" + path + "'";
        return nullptr;
      }
      const std::string idx_text = path.substr(j + 1, close - j - 1);
      std::size_t idx = 0;
      try {
        idx = static_cast<std::size_t>(std::stoul(idx_text));
      } catch (const std::exception&) {
        *err = "bad array index '" + idx_text + "' in --set path '" + path + "'";
        return nullptr;
      }
      if (!node->is_array() || idx >= node->items().size()) {
        *err = "array index " + idx_text + " out of range in --set path '" + path + "'";
        return nullptr;
      }
      node = &node->items()[idx];
      j = close + 1;
    }
    if (j < path.size()) {
      if (path[j] != '.') {
        *err = "expected '.' after ']' in --set path '" + path + "'";
        return nullptr;
      }
      ++j;
    }
    i = j;
  }
  return node;
}

Json parse_override_value(const std::string& text) {
  try {
    return Json::parse(text);
  } catch (const mps::JsonError&) {
    return Json::string(text);  // bare words are strings: --set scheduler=ecf
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mps;

  const auto wall_start = std::chrono::steady_clock::now();

  if (argc < 2 || std::string(argv[1]) == "--help") {
    std::fprintf(stderr,
                 "usage: %s <spec.json> [--set key=value]... [--print-spec]\n"
                 "          [--prof-out FILE] [--progress[=SECS]]\n"
                 "  e.g. %s scenarios/tab02_rtt_cell.json --set scheduler=blest\n",
                 argv[0], argv[0]);
    return 2;
  }

  const std::string spec_path = argv[1];
  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "mps_run: cannot open %s\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  bool print_spec = false;
  Json doc;
  try {
    doc = Json::parse(buf.str());
  } catch (const JsonError& e) {
    std::fprintf(stderr, "mps_run: %s: %s\n", spec_path.c_str(), e.what());
    return 1;
  }

  std::string prof_out;
  double progress_s = 0.0;
  double snapshot_at_s = -1.0;
  int fork_k = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--prof-out" && i + 1 < argc) {
      prof_out = argv[++i];
    } else if (arg.rfind("--snapshot-at=", 0) == 0) {
      try {
        snapshot_at_s = std::stod(arg.substr(std::string("--snapshot-at=").size()));
      } catch (const std::exception&) {
        std::fprintf(stderr, "mps_run: bad --snapshot-at time '%s'\n", arg.c_str());
        return 2;
      }
      if (snapshot_at_s < 0.0) {
        std::fprintf(stderr, "mps_run: --snapshot-at must be >= 0\n");
        return 2;
      }
    } else if (arg.rfind("--fork=", 0) == 0) {
      try {
        fork_k = std::stoi(arg.substr(std::string("--fork=").size()));
      } catch (const std::exception&) {
        std::fprintf(stderr, "mps_run: bad --fork count '%s'\n", arg.c_str());
        return 2;
      }
      if (fork_k < 1) {
        std::fprintf(stderr, "mps_run: --fork must be >= 1\n");
        return 2;
      }
    } else if (arg == "--progress" || arg.rfind("--progress=", 0) == 0) {
      progress_s = 1.0;
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        try {
          progress_s = std::stod(arg.substr(eq + 1));
        } catch (const std::exception&) {
          std::fprintf(stderr, "mps_run: bad --progress interval '%s'\n", arg.c_str());
          return 2;
        }
        if (progress_s <= 0.0) {
          std::fprintf(stderr, "mps_run: --progress interval must be > 0\n");
          return 2;
        }
      }
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "mps_run: --set expects key=value, got '%s'\n", kv.c_str());
        return 2;
      }
      std::string err;
      Json* node = navigate(doc, kv.substr(0, eq), &err);
      if (!node) {
        std::fprintf(stderr, "mps_run: %s\n", err.c_str());
        return 2;
      }
      *node = parse_override_value(kv.substr(eq + 1));
    } else {
      std::fprintf(stderr, "mps_run: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  ScenarioSpec spec;
  try {
    spec = scenario_from_json(doc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mps_run: %s: %s\n", spec_path.c_str(), e.what());
    return 1;
  }

  if (print_spec) {
    std::printf("%s\n", serialize_scenario(spec).c_str());
    return 0;
  }

  if (!spec.name.empty()) std::printf("scenario: %s\n", spec.name.c_str());

  try {
    ScenarioRunOptions opts;
    FlightRecorder recorder;
    // The flight recorder is plumbed through the streaming runner and the
    // traffic engine only.
    if (spec.record.summarize &&
        (spec.traffic.enabled || spec.workload.kind == WorkloadKind::kStream)) {
      opts.recorder = &recorder;
    }
    RunTelemetry telemetry;
    if (!prof_out.empty()) opts.telemetry = &telemetry;
    if (progress_s > 0.0) {
      opts.heartbeat.interval_s = progress_s;
      FlightRecorder* rec = opts.recorder;
      opts.heartbeat.fn = [rec](const HeartbeatStats& hb) {
        std::fprintf(stderr, "progress: sim %.1f s, %llu events, %.0f ev/s, sim/wall %.2f",
                     hb.sim_s, static_cast<unsigned long long>(hb.events),
                     hb.events_per_sec, hb.sim_per_wall);
        if (rec != nullptr) {
          const std::uint64_t started = rec->metrics().total("traffic.flows_started");
          const std::uint64_t done = rec->metrics().total("traffic.flows_completed");
          if (started > 0) {
            std::fprintf(stderr, ", flows %llu live / %llu done",
                         static_cast<unsigned long long>(started - done),
                         static_cast<unsigned long long>(done));
          }
        }
        std::fputc('\n', stderr);
      };
    }
    ScenarioOutcome out;
    if (snapshot_at_s >= 0.0) {
      if (fork_k > 1) {
        const std::vector<ScenarioOutcome> forks =
            run_scenario_fork_k(spec, snapshot_at_s, fork_k, opts);
        const std::string first = format_outcome(spec, forks.front());
        int agree = 1;
        for (std::size_t j = 1; j < forks.size(); ++j) {
          if (format_outcome(spec, forks[j]) == first) ++agree;
        }
        std::fprintf(stderr, "fork-check: %d/%d forks at t=%.3fs identical%s\n", agree,
                     fork_k, snapshot_at_s, agree == fork_k ? "" : " -- MISMATCH");
        if (agree != fork_k) return 1;
        out = forks.front();
      } else {
        out = run_scenario_forked(spec, snapshot_at_s, opts);
      }
    } else if (fork_k > 1) {
      std::fprintf(stderr, "mps_run: --fork requires --snapshot-at\n");
      return 2;
    } else {
      out = run_scenario(spec, opts);
    }
    std::fputs(format_outcome(spec, out).c_str(), stdout);
    if (opts.recorder) {
      std::printf("\n--- flight recorder ---\n");
      std::ostringstream report;
      recorder.summarize(report);
      std::fputs(report.str().c_str(), stdout);
    }
    if (!prof_out.empty()) {
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
              .count();
      const std::uint64_t flows = spec.traffic.enabled ? out.traffic.started : 0;
      ProfileReport report =
          build_profile_report(prof::snapshot(), wall_s, &telemetry, flows);
      std::ofstream pf(prof_out);
      if (!pf) {
        std::fprintf(stderr, "mps_run: cannot write %s\n", prof_out.c_str());
        return 1;
      }
      pf << profile_report_to_json(report).dump(2) << "\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mps_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
