// mps_report — analyze a ProfileReport written by mps_run --prof-out or the
// bench drivers.
//
//   mps_report <prof.json> [--top N] [--trace events.jsonl] [--check]
//
//   --top N              Show the N hottest scopes by self time (default 10).
//   --trace FILE         Also read a JSONL trace (mps_run presets with
//                        record.collect_traces, obs/events.h format) and
//                        print per-flow timeline summaries.
//   --check              Validate only: parse the report against the
//                        mps.profile.v1 schema, print nothing on success.
//                        Exit 1 with the offending key on stderr otherwise.
//
// Output is deterministic for a fixed input file (no clocks, no locale), so
// tests pin it byte-for-byte (tests/prof_test.cpp).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/prof_report.h"
#include "scenario/json.h"

int main(int argc, char** argv) {
  using namespace mps;

  if (argc < 2 || std::string(argv[1]) == "--help") {
    std::fprintf(stderr,
                 "usage: %s <prof.json> [--top N] [--trace events.jsonl] [--check]\n",
                 argv[0]);
    return 2;
  }

  const std::string report_path = argv[1];
  int top_n = 10;
  std::string trace_path;
  bool check_only = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      try {
        top_n = std::stoi(argv[++i]);
      } catch (const std::exception&) {
        std::fprintf(stderr, "mps_report: bad --top value '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--check") {
      check_only = true;
    } else {
      std::fprintf(stderr, "mps_report: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::ifstream in(report_path);
  if (!in) {
    std::fprintf(stderr, "mps_report: cannot open %s\n", report_path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  ProfileReport report;
  try {
    report = profile_report_from_json(Json::parse(buf.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mps_report: %s: %s\n", report_path.c_str(), e.what());
    return 1;
  }
  if (check_only) return 0;

  std::fputs(render_profile_report(report, top_n).c_str(), stdout);

  if (!trace_path.empty()) {
    std::ifstream trace(trace_path);
    if (!trace) {
      std::fprintf(stderr, "mps_report: cannot open %s\n", trace_path.c_str());
      return 2;
    }
    std::fputc('\n', stdout);
    std::fputs(render_flow_timelines(trace).c_str(), stdout);
  }
  return 0;
}
